"""Gradient-descent optimizers.

Both optimizers keep their per-parameter state (momentum / moment buffers)
in **index-keyed** lists that are allocated once, on the first step that sees
a gradient, and updated **in place** afterwards.  Keying by parameter index
rather than ``id(p)`` means the state meaningfully round-trips through
:meth:`Optimizer.state_dict` / :meth:`Optimizer.load_state_dict` even when
the parameters themselves are rebuilt (e.g. a model re-created from a
checkpoint), and the in-place updates avoid re-allocating parameter-sized
arrays on every training step — a measurable share of BPTT step time for
the small tensors this engine works with.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer: holds parameters and a mutable learning rate."""

    def __init__(self, parameters: Sequence[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def set_lr(self, lr: float) -> None:
        """Update the learning rate (called by LR schedulers).

        Zero is allowed here (cosine annealing reaches exactly zero at the
        end of its schedule); only the initial learning rate must be
        strictly positive.
        """
        if lr < 0:
            raise ValueError(f"learning rate must be non-negative, got {lr}")
        self.lr = float(lr)

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, Any]:
        """Serializable snapshot of optimizer state (index-keyed)."""
        return {"lr": self.lr}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict`.

        The optimizer must have been constructed over the same number of
        parameters, in the same order, as the one that produced ``state``.
        """
        self.lr = float(state["lr"])

    def _check_state_length(self, buffers: Sequence[Optional[np.ndarray]]) -> None:
        if len(buffers) != len(self.parameters):
            raise ValueError(
                f"optimizer state holds {len(buffers)} parameter slots, "
                f"but this optimizer has {len(self.parameters)} parameters"
            )

    @staticmethod
    def _copy_buffers(buffers: Sequence[Optional[np.ndarray]]) -> List[Optional[np.ndarray]]:
        return [None if b is None else np.array(b, copy=True) for b in buffers]


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must lie in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._buf: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            buf = self._buf[i]
            if buf is None:
                buf = self._buf[i] = np.empty_like(p.data)
            if self.weight_decay:
                np.multiply(p.data, self.weight_decay, out=buf)
                buf += grad
                grad = buf
            if self.momentum:
                vel = self._velocity[i]
                if vel is None:
                    vel = self._velocity[i] = grad.copy()
                else:
                    np.multiply(vel, self.momentum, out=vel)
                    vel += grad
                update = vel
            else:
                update = grad
            np.multiply(update, self.lr, out=buf)
            p.data -= buf

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state["velocity"] = self._copy_buffers(self._velocity)
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        self._check_state_length(state["velocity"])
        self._velocity = self._copy_buffers(state["velocity"])


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba), the de-facto choice for snnTorch models.

    Moment buffers are allocated once per parameter (on the first step that
    sees a gradient for it) and updated in place on every later step; the
    previous implementation allocated fresh zero buffers per parameter per
    step just to service ``dict.get`` defaults.
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        if eps <= 0:
            raise ValueError("eps must be positive")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._buf: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._wd_buf: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                # Decayed gradient in its own scratch: `grad` is read twice
                # below (m and v updates) while `buf` is being overwritten.
                wd_buf = self._wd_buf[i]
                if wd_buf is None:
                    wd_buf = self._wd_buf[i] = np.empty_like(p.data)
                np.multiply(p.data, self.weight_decay, out=wd_buf)
                wd_buf += grad
                grad = wd_buf
            m, v = self._m[i], self._v[i]
            if m is None:
                m = self._m[i] = np.zeros_like(p.data)
                v = self._v[i] = np.zeros_like(p.data)
            buf = self._buf[i]
            if buf is None:
                buf = self._buf[i] = np.empty_like(p.data)

            # m = beta1 * m + (1 - beta1) * grad, in place.
            np.multiply(m, self.beta1, out=m)
            np.multiply(grad, 1.0 - self.beta1, out=buf)
            m += buf
            # v = beta2 * v + (1 - beta2) * grad^2, in place.
            np.multiply(v, self.beta2, out=v)
            np.multiply(grad, grad, out=buf)
            buf *= 1.0 - self.beta2
            v += buf
            # p -= lr * (m / bias1) / (sqrt(v / bias2) + eps), via one scratch.
            np.divide(v, bias2, out=buf)
            np.sqrt(buf, out=buf)
            buf += self.eps
            np.divide(m, buf, out=buf)
            buf *= self.lr / bias1
            p.data -= buf

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state["t"] = self._t
        state["m"] = self._copy_buffers(self._m)
        state["v"] = self._copy_buffers(self._v)
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        self._check_state_length(state["m"])
        self._check_state_length(state["v"])
        self._t = int(state["t"])
        self._m = self._copy_buffers(state["m"])
        self._v = self._copy_buffers(state["v"])
        self._buf = [None] * len(self.parameters)
        self._wd_buf = [None] * len(self.parameters)
