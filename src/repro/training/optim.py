"""Gradient-descent optimizers."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer: holds parameters and a mutable learning rate."""

    def __init__(self, parameters: Sequence[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def set_lr(self, lr: float) -> None:
        """Update the learning rate (called by LR schedulers).

        Zero is allowed here (cosine annealing reaches exactly zero at the
        end of its schedule); only the initial learning rate must be
        strictly positive.
        """
        if lr < 0:
            raise ValueError(f"learning rate must be non-negative, got {lr}")
        self.lr = float(lr)


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must lie in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for p in self.parameters:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel = self._velocity.get(id(p))
                vel = self.momentum * vel + grad if vel is not None else grad.copy()
                self._velocity[id(p)] = vel
                update = vel
            else:
                update = grad
            p.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba), the de-facto choice for snnTorch models."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        if eps <= 0:
            raise ValueError("eps must be positive")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for p in self.parameters:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m = self._m.get(id(p), np.zeros_like(p.data))
            v = self._v.get(id(p), np.zeros_like(p.data))
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * (grad * grad)
            self._m[id(p)], self._v[id(p)] = m, v
            m_hat = m / (1 - self.beta1 ** self._t)
            v_hat = v / (1 - self.beta2 ** self._t)
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
