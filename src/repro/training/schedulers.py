"""Learning-rate schedulers."""

from __future__ import annotations

import math

from repro.training.optim import Optimizer


class LRScheduler:
    """Base scheduler: call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and apply the new learning rate."""
        self.epoch += 1
        lr = self.get_lr()
        self.optimizer.set_lr(lr)
        return lr

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr


class ConstantLR(LRScheduler):
    """No-op scheduler (fixed learning rate)."""

    def get_lr(self) -> float:
        return self.base_lr


class CosineAnnealingLR(LRScheduler):
    r"""Cosine annealing (SGDR, Loshchilov & Hutter 2016) — the paper's schedule.

    .. math::

        \eta_t = \eta_{min} + \tfrac{1}{2}(\eta_{max} - \eta_{min})
                 \left(1 + \cos\frac{t\pi}{T_{max}}\right)

    The paper uses 25 epochs, citing cosine annealing's fast convergence to
    good accuracy as the reason for the short schedule.
    """

    def __init__(self, optimizer: Optimizer, t_max: int = 25, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        if eta_min < 0 or eta_min > optimizer.lr:
            raise ValueError("eta_min must lie in [0, base_lr]")
        self.t_max = int(t_max)
        self.eta_min = float(eta_min)

    def get_lr(self) -> float:
        t = min(self.epoch, self.t_max)
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1 + math.cos(math.pi * t / self.t_max))


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int = 10, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must lie in (0, 1]")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def get_lr(self) -> float:
        return self.base_lr * (self.gamma ** (self.epoch // self.step_size))
