"""Classification metrics."""

from __future__ import annotations

import numpy as np


def accuracy(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Fraction of correct predictions.

    ``predictions`` may be class indices of shape ``(N,)`` or score matrices
    of shape ``(N, C)`` (argmax is taken along the last axis).
    """
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=-1)
    if predictions.shape != targets.shape:
        raise ValueError(f"shape mismatch: predictions {predictions.shape} vs targets {targets.shape}")
    if predictions.size == 0:
        return 0.0
    return float((predictions == targets).mean())


def top_k_accuracy(scores: np.ndarray, targets: np.ndarray, k: int = 3) -> float:
    """Fraction of samples whose true class is within the top-k scores."""
    scores = np.asarray(scores)
    targets = np.asarray(targets)
    if scores.ndim != 2:
        raise ValueError("top_k_accuracy requires a score matrix of shape (N, C)")
    if k <= 0 or k > scores.shape[1]:
        raise ValueError(f"k must lie in [1, {scores.shape[1]}], got {k}")
    top_k = np.argsort(-scores, axis=1)[:, :k]
    hits = (top_k == targets[:, None]).any(axis=1)
    return float(hits.mean()) if hits.size else 0.0


def confusion_matrix(predictions: np.ndarray, targets: np.ndarray, num_classes: int) -> np.ndarray:
    """Confusion matrix with rows = true class, columns = predicted class."""
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=-1)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for t, p in zip(targets, predictions):
        matrix[int(t), int(p)] += 1
    return matrix
