"""Aligned ASCII tables for terminal reporting."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
    float_format: str = "{:.4f}",
) -> str:
    """Render rows as an aligned text table.

    Floats are formatted with ``float_format``; every other value uses
    ``str``.  Column widths adapt to the longest cell.
    """
    def render(value) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    str_rows: List[List[str]] = [[render(v) for v in row] for row in rows]
    headers = [str(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells but there are {len(headers)} headers")

    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(headers))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(format_row(row) for row in str_rows)
    return "\n".join(lines)
