"""Firing-rate / sparsity profiling of trained spiking models.

The hardware model consumes *average spike events per timestep per sample*
for the network input and for every spiking layer.  This module measures
those quantities by running the trained model over (a sample of) the test
set with statistics recording enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.data.dataloader import DataLoader
from repro.encoding.base import Encoder
from repro.neurons.base import SpikingNeuron
from repro.nn.module import Module


@dataclass
class SparsityProfile:
    """Measured spiking activity of a trained model.

    Attributes
    ----------
    layer_events_per_step:
        Average output spike events per timestep per sample, keyed by the
        spiking layer's name in the model.
    input_events_per_step:
        Average encoder spike events per timestep per sample.
    layer_neuron_counts:
        Number of neurons per spiking layer (for firing-rate normalisation).
    num_steps:
        Timesteps used during profiling.
    samples_profiled:
        Number of samples the averages were taken over.
    """

    layer_events_per_step: Dict[str, float]
    input_events_per_step: float
    layer_neuron_counts: Dict[str, int]
    num_steps: int
    samples_profiled: int

    def firing_rate(self, layer_name: str) -> float:
        """Average spikes per neuron per timestep for one layer."""
        neurons = self.layer_neuron_counts.get(layer_name, 0)
        if neurons == 0:
            return 0.0
        return self.layer_events_per_step[layer_name] / neurons

    def average_firing_rate(self) -> float:
        """Network-wide average spikes per neuron per timestep."""
        total_neurons = sum(self.layer_neuron_counts.values())
        if total_neurons == 0:
            return 0.0
        total_events = sum(self.layer_events_per_step.values())
        return total_events / total_neurons

    def as_dict(self) -> Dict[str, float]:
        out = {f"events/{name}": value for name, value in self.layer_events_per_step.items()}
        out["input_events_per_step"] = self.input_events_per_step
        out["average_firing_rate"] = self.average_firing_rate()
        return out


def profile_sparsity(
    model: Module,
    encoder: Encoder,
    loader: DataLoader,
    max_batches: Optional[int] = None,
) -> SparsityProfile:
    """Measure per-layer firing rates of ``model`` on data from ``loader``.

    The model must expose named spiking layers (any model whose neuron layers
    are registered submodules does).  Statistics are averaged per sample and
    per timestep so they are independent of batch size.

    Parameters
    ----------
    model:
        Trained spiking classifier.
    encoder:
        The same encoder used at training/evaluation time.
    loader:
        Data to profile over (typically the test loader).
    max_batches:
        Optional cap on the number of batches (profiling cost control).
    """
    model.eval()
    spiking_layers = [
        (name, module) for name, module in model.named_modules() if isinstance(module, SpikingNeuron)
    ]
    if not spiking_layers:
        raise ValueError("model contains no spiking layers to profile")

    layer_events = {name: 0.0 for name, _ in spiking_layers}
    neuron_counts = {name: 0 for name, _ in spiking_layers}
    input_events = 0.0
    total_samples = 0
    batches = 0

    with no_grad():
        for images, _labels in loader:
            model.reset_spiking_state()
            spikes = encoder(images)
            input_events += float(spikes.sum())
            model(Tensor(spikes))
            batch_size = images.shape[0]
            total_samples += batch_size
            for name, module in spiking_layers:
                layer_events[name] += module.total_spikes()
                neuron_counts[name] = module.state.element_count // max(batch_size, 1)
            batches += 1
            if max_batches is not None and batches >= max_batches:
                break

    if total_samples == 0:
        raise ValueError("loader yielded no samples to profile")

    steps = encoder.num_steps
    per_step = {
        name: events / (total_samples * steps) for name, events in layer_events.items()
    }
    return SparsityProfile(
        layer_events_per_step=per_step,
        input_events_per_step=input_events / (total_samples * steps),
        layer_neuron_counts=neuron_counts,
        num_steps=steps,
        samples_profiled=total_samples,
    )
