"""Result serialisation (JSON and CSV)."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

PathLike = Union[str, Path]


def _to_serialisable(value):
    """Convert NumPy scalars/arrays to plain Python types for JSON."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {k: _to_serialisable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_serialisable(v) for v in value]
    return value


def save_json(data, path: PathLike) -> Path:
    """Write ``data`` as pretty-printed JSON; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(_to_serialisable(data), handle, indent=2, sort_keys=True)
    return path


def load_json(path: PathLike):
    """Load JSON written by :func:`save_json`."""
    with open(Path(path)) as handle:
        return json.load(handle)


def save_csv(rows: Sequence[Dict[str, object]], path: PathLike) -> Path:
    """Write a list of flat dictionaries as CSV (union of keys as header)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not rows:
        path.write_text("")
        return path
    fieldnames: List[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow({k: _to_serialisable(v) for k, v in row.items()})
    return path


def load_csv(path: PathLike) -> List[Dict[str, str]]:
    """Load a CSV written by :func:`save_csv` (values remain strings)."""
    with open(Path(path), newline="") as handle:
        return list(csv.DictReader(handle))
