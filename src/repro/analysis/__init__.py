"""Analysis and reporting utilities.

* :mod:`repro.analysis.sparsity` — measure per-layer firing rates of a
  trained model (the bridge between training and the hardware model).
* :mod:`repro.analysis.pareto` — accuracy-vs-efficiency Pareto fronts.
* :mod:`repro.analysis.tables` — aligned ASCII tables for terminal output.
* :mod:`repro.analysis.plots` — dependency-free ASCII line/heatmap plots for
  the figures (no matplotlib available offline).
* :mod:`repro.analysis.io` — CSV/JSON result serialisation.
"""

from repro.analysis.sparsity import SparsityProfile, profile_sparsity
from repro.analysis.pareto import pareto_front, dominates
from repro.analysis.tables import format_table
from repro.analysis.plots import ascii_line_plot, ascii_heatmap
from repro.analysis.io import save_json, load_json, save_csv, load_csv

__all__ = [
    "SparsityProfile",
    "profile_sparsity",
    "pareto_front",
    "dominates",
    "format_table",
    "ascii_line_plot",
    "ascii_heatmap",
    "save_json",
    "load_json",
    "save_csv",
    "load_csv",
]
