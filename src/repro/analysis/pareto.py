"""Pareto-front extraction for accuracy / efficiency trade-offs."""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True if point ``a`` Pareto-dominates ``b`` (all objectives maximised).

    ``a`` dominates ``b`` when it is at least as good in every objective and
    strictly better in at least one.
    """
    if len(a) != len(b):
        raise ValueError("points must have the same number of objectives")
    at_least_as_good = all(x >= y for x, y in zip(a, b))
    strictly_better = any(x > y for x, y in zip(a, b))
    return at_least_as_good and strictly_better


def pareto_front(
    items: Sequence[T],
    objectives: Callable[[T], Sequence[float]],
) -> List[T]:
    """Return the subset of ``items`` not dominated by any other item.

    Parameters
    ----------
    items:
        Candidate configurations (e.g. sweep results).
    objectives:
        Function mapping an item to a tuple of objectives, all maximised
        (negate any metric that should be minimised, e.g. latency).
    """
    points = [tuple(objectives(item)) for item in items]
    front: List[T] = []
    for i, item in enumerate(items):
        if not any(dominates(points[j], points[i]) for j in range(len(items)) if j != i):
            front.append(item)
    return front
