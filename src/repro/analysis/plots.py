"""Dependency-free ASCII plots (matplotlib is unavailable offline).

The paper's two figures are a pair of line plots (Figure 1) and a
cross-sweep grid (Figure 2); these helpers render recognisable terminal
versions of both so the benchmark harness can show the reproduced *shape*
of each figure directly in its output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np


def ascii_line_plot(
    x: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    title: Optional[str] = None,
    y_label: str = "",
) -> str:
    """Plot one or more series against shared x values as ASCII art.

    Each series gets its own marker character; x values are mapped to columns
    by rank (matching the log-spaced sweeps of Figure 1).
    """
    markers = "*o+x#@%&"
    x = list(x)
    if not x:
        raise ValueError("x must be non-empty")
    all_y = [v for values in series.values() for v in values]
    if not all_y:
        raise ValueError("series must contain at least one value")
    y_min, y_max = min(all_y), max(all_y)
    if y_max - y_min < 1e-12:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for s_idx, (name, values) in enumerate(series.items()):
        if len(values) != len(x):
            raise ValueError(f"series '{name}' length {len(values)} != x length {len(x)}")
        marker = markers[s_idx % len(markers)]
        for i, value in enumerate(values):
            col = int(round(i * (width - 1) / max(len(x) - 1, 1)))
            row = int(round((value - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:10.3f} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_min:10.3f} +" + "-" * width)
    x_axis = f"{'':11} x: {x[0]:g} ... {x[-1]:g}"
    lines.append(x_axis)
    legend = "   ".join(f"{markers[i % len(markers)]} = {name}" for i, name in enumerate(series))
    lines.append(" " * 11 + legend)
    if y_label:
        lines.append(" " * 11 + f"y: {y_label}")
    return "\n".join(lines)


def ascii_heatmap(
    values: np.ndarray,
    row_labels: Sequence,
    col_labels: Sequence,
    title: Optional[str] = None,
    cell_format: str = "{:.3f}",
) -> str:
    """Render a 2-D grid (e.g. the beta x theta cross-sweep) with shading.

    Cells show the numeric value; a trailing intensity character gives a
    quick visual of where the high values sit.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise ValueError("heatmap requires a 2-D array")
    if values.shape != (len(row_labels), len(col_labels)):
        raise ValueError("label counts must match the value grid shape")
    shades = " .:-=+*#%@"
    vmin, vmax = float(values.min()), float(values.max())
    span = vmax - vmin if vmax > vmin else 1.0

    cell_width = max(len(cell_format.format(v)) for v in values.reshape(-1)) + 2
    col_header = " " * 10 + "".join(str(c).rjust(cell_width) for c in col_labels)
    lines = []
    if title:
        lines.append(title)
    lines.append(col_header)
    for r, row_label in enumerate(row_labels):
        cells = []
        for c in range(len(col_labels)):
            value = values[r, c]
            shade = shades[int((value - vmin) / span * (len(shades) - 1))]
            cells.append((cell_format.format(value) + shade).rjust(cell_width))
        lines.append(str(row_label).rjust(10) + "".join(cells))
    return "\n".join(lines)
