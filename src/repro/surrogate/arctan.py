"""Arctangent surrogate gradient (Eq. 3 of the paper)."""

from __future__ import annotations

import numpy as np

from repro.surrogate.base import SurrogateFunction


class ArcTan(SurrogateFunction):
    r"""Arctangent surrogate.

    Smooth approximation (paper Eq. 3):

    .. math:: S \approx \frac{1}{\pi}\arctan\left(\frac{\pi U \alpha}{2}\right)

    whose derivative, used in the backward pass, is

    .. math:: \frac{dS}{dU} = \frac{\alpha/2}{1 + \left(\frac{\pi U \alpha}{2}\right)^2}

    ``scale`` corresponds to the paper's :math:`\alpha`.  Larger values make
    the derivative sharper around the threshold (closer to the true step) and
    narrower in support; the paper sweeps :math:`\alpha \in [0.5, 32]`.
    snnTorch uses ``alpha = 2`` by default.
    """

    name = "arctan"

    def __init__(self, scale: float = 2.0) -> None:
        super().__init__(scale)

    def forward_smooth(self, u: np.ndarray) -> np.ndarray:
        return np.arctan(np.pi * u * self.scale / 2.0) / np.pi

    def derivative(self, u: np.ndarray) -> np.ndarray:
        inner = np.pi * u * self.scale / 2.0
        return (self.scale / 2.0) / (1.0 + inner * inner)
