"""Sigmoid surrogate gradient (extension beyond the paper's two surrogates)."""

from __future__ import annotations

import numpy as np

from repro.surrogate.base import SurrogateFunction


class Sigmoid(SurrogateFunction):
    r"""Logistic-sigmoid surrogate.

    .. math:: S \approx \sigma(kU) = \frac{1}{1 + e^{-kU}} \qquad
              \frac{dS}{dU} = k\,\sigma(kU)\,(1 - \sigma(kU))

    Included for the extended surrogate comparison (the paper's future-work
    direction of studying additional hyperparameters).
    """

    name = "sigmoid"

    def __init__(self, scale: float = 25.0) -> None:
        super().__init__(scale)

    def forward_smooth(self, u: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-self.scale * u))

    def derivative(self, u: np.ndarray) -> np.ndarray:
        s = 1.0 / (1.0 + np.exp(-self.scale * np.clip(u, -60.0 / self.scale, 60.0 / self.scale)))
        return self.scale * s * (1.0 - s)
