"""Piecewise-linear (boxcar) surrogate gradient."""

from __future__ import annotations

import numpy as np

from repro.surrogate.base import SurrogateFunction


class PiecewiseLinear(SurrogateFunction):
    r"""Boxcar surrogate: constant derivative inside a window around threshold.

    .. math:: \frac{dS}{dU} = \frac{\text{scale}}{2}\;
              \mathbb{1}\!\left[|U| < \frac{1}{\text{scale}}\right]

    A common hardware-friendly surrogate (single comparison + constant),
    included for the extended comparison.
    """

    name = "piecewise_linear"

    def __init__(self, scale: float = 1.0) -> None:
        super().__init__(scale)

    def forward_smooth(self, u: np.ndarray) -> np.ndarray:
        return np.clip(0.5 + 0.5 * u * self.scale, 0.0, 1.0)

    def derivative(self, u: np.ndarray) -> np.ndarray:
        window = (np.abs(u) < 1.0 / self.scale).astype(u.dtype if hasattr(u, "dtype") else np.float64)
        return 0.5 * self.scale * window
