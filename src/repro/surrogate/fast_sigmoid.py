"""Fast-sigmoid surrogate gradient (Eq. 4 of the paper)."""

from __future__ import annotations

import numpy as np

from repro.surrogate.base import SurrogateFunction


class FastSigmoid(SurrogateFunction):
    r"""Fast-sigmoid surrogate (Zenke & Ganguli's SuperSpike derivative).

    Smooth approximation (paper Eq. 4):

    .. math:: S \approx \frac{U}{1 + k|U|}

    whose derivative, used in the backward pass, is

    .. math:: \frac{dS}{dU} = \frac{1}{(1 + k|U|)^2}

    ``scale`` corresponds to the paper's :math:`k` (snnTorch's ``slope``).
    The paper's beta/theta cross-sweep (Figure 2) fixes the fast-sigmoid
    slope at ``0.25``; the Figure 1 sweep covers :math:`k \in [0.5, 32]`.
    """

    name = "fast_sigmoid"

    def __init__(self, scale: float = 25.0) -> None:
        super().__init__(scale)

    def forward_smooth(self, u: np.ndarray) -> np.ndarray:
        return u / (1.0 + self.scale * np.abs(u))

    def derivative(self, u: np.ndarray) -> np.ndarray:
        denom = 1.0 + self.scale * np.abs(u)
        return 1.0 / (denom * denom)
