"""Triangular (piecewise-linear hat) surrogate gradient."""

from __future__ import annotations

import numpy as np

from repro.surrogate.base import SurrogateFunction


class Triangular(SurrogateFunction):
    r"""Triangular surrogate (Esser et al. / Bellec et al. style).

    .. math:: \frac{dS}{dU} = \gamma \max\left(0,\; 1 - |U|\,\text{scale}\right)

    with ``gamma`` fixed to ``scale`` so the area under the derivative stays
    approximately one.  The support shrinks as ``scale`` grows, mirroring the
    sharpening behaviour of the paper's two surrogates.
    """

    name = "triangular"

    def __init__(self, scale: float = 1.0) -> None:
        super().__init__(scale)

    def forward_smooth(self, u: np.ndarray) -> np.ndarray:
        # Integral of the hat derivative, clipped to [0, 1].
        x = np.clip(u * self.scale, -1.0, 1.0)
        return 0.5 + x - 0.5 * np.sign(x) * x * x

    def derivative(self, u: np.ndarray) -> np.ndarray:
        return self.scale * np.maximum(0.0, 1.0 - np.abs(u) * self.scale)
