"""Surrogate-gradient base class and the spike autograd function.

The spiking non-linearity is ``S = Heaviside(U - theta)``.  In the forward
pass we emit binary spikes; in the backward pass the chosen
:class:`SurrogateFunction` supplies ``dS/dU`` evaluated at the centred
membrane potential ``U - theta``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd.function import Context, Function
from repro.autograd.tensor import Tensor


class SurrogateFunction:
    """Interface for surrogate derivative providers.

    A surrogate has a human-readable :attr:`name`, a derivative ``scale``
    (the ``alpha`` / ``k`` of the paper), and two callables on raw arrays:

    ``forward_smooth(u)``
        The smooth approximation of the Heaviside itself (used for analysis
        and plotting, not in the training forward pass).

    ``derivative(u)``
        The surrogate derivative ``dS/dU`` evaluated at centred potential
        ``u`` (i.e. ``U - theta``).
    """

    name: str = "surrogate"

    def __init__(self, scale: float = 25.0) -> None:
        if scale <= 0:
            raise ValueError(f"surrogate scale must be positive, got {scale}")
        self.scale = float(scale)

    def forward_smooth(self, u: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def derivative(self, u: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, membrane: Tensor, threshold: float = 1.0) -> Tensor:
        """Emit spikes from a membrane-potential tensor (Heaviside forward)."""
        return spike(membrane, threshold, self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(scale={self.scale})"

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self.scale == other.scale

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.scale))


class SpikeFunction(Function):
    """Heaviside forward / surrogate backward.

    ``forward(u, threshold, surrogate)`` returns ``1`` where ``u > threshold``
    else ``0``.  ``backward`` multiplies the incoming gradient by the
    surrogate derivative evaluated at ``u - threshold``.
    """

    @staticmethod
    def forward(ctx: Context, u: np.ndarray, threshold: float, surrogate: SurrogateFunction) -> np.ndarray:
        centred = u - threshold
        ctx.save_for_backward(centred, surrogate)
        return (centred > 0).astype(u.dtype)

    @staticmethod
    def backward(ctx: Context, grad_output: np.ndarray):
        centred, surrogate = ctx.saved
        grad = grad_output * surrogate.derivative(centred)
        return grad, None, None


def spike(membrane: Tensor, threshold: float, surrogate: SurrogateFunction) -> Tensor:
    """Apply the spiking non-linearity with a surrogate gradient.

    Parameters
    ----------
    membrane:
        Membrane potential tensor ``U`` of any shape.
    threshold:
        Firing threshold ``theta`` (Eq. 2).
    surrogate:
        The surrogate supplying ``dS/dU`` for the backward pass.
    """
    return SpikeFunction.apply(membrane, float(threshold), surrogate)


class HeavisideExact(SurrogateFunction):
    """The true (non-differentiable) step — zero gradient almost everywhere.

    Included as a degenerate baseline: training with it demonstrates the
    dead-gradient problem that motivates surrogate gradients.
    """

    name = "heaviside"

    def __init__(self, scale: float = 1.0) -> None:
        super().__init__(scale)

    def forward_smooth(self, u: np.ndarray) -> np.ndarray:
        return (u > 0).astype(np.float64)

    def derivative(self, u: np.ndarray) -> np.ndarray:
        return np.zeros_like(u)
