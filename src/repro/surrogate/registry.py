"""Name-based registry of surrogate gradient functions.

The sweep harness in :mod:`repro.core` refers to surrogates by name
(``"arctan"``, ``"fast_sigmoid"``, ...) so experiment configurations remain
plain serialisable data.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.surrogate.arctan import ArcTan
from repro.surrogate.base import HeavisideExact, SurrogateFunction
from repro.surrogate.fast_sigmoid import FastSigmoid
from repro.surrogate.piecewise import PiecewiseLinear
from repro.surrogate.sigmoid import Sigmoid
from repro.surrogate.straight_through import StraightThrough
from repro.surrogate.triangular import Triangular

_REGISTRY: Dict[str, Type[SurrogateFunction]] = {}


def register_surrogate(cls: Type[SurrogateFunction]) -> Type[SurrogateFunction]:
    """Register a surrogate class under its ``name`` attribute.

    Can be used as a decorator for user-defined surrogates::

        @register_surrogate
        class MySurrogate(SurrogateFunction):
            name = "my_surrogate"
            ...
    """
    if not getattr(cls, "name", None):
        raise ValueError("surrogate classes must define a non-empty 'name' attribute")
    _REGISTRY[cls.name] = cls
    return cls


def get_surrogate(name: str, scale: float | None = None) -> SurrogateFunction:
    """Instantiate a registered surrogate by name.

    Parameters
    ----------
    name:
        Registered surrogate name (see :func:`available_surrogates`).
    scale:
        Derivative scaling factor (``alpha`` / ``k``).  When ``None`` the
        surrogate's default is used.
    """
    key = name.lower().replace("-", "_").replace(" ", "_")
    if key not in _REGISTRY:
        raise KeyError(f"unknown surrogate '{name}'; available: {sorted(_REGISTRY)}")
    cls = _REGISTRY[key]
    return cls() if scale is None else cls(scale=scale)


def available_surrogates() -> List[str]:
    """Names of all registered surrogates, sorted."""
    return sorted(_REGISTRY)


for _cls in (ArcTan, FastSigmoid, Sigmoid, Triangular, PiecewiseLinear, StraightThrough, HeavisideExact):
    register_surrogate(_cls)
