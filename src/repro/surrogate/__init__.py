"""Surrogate gradient functions for spiking neural network training.

The forward pass of a spiking neuron applies a Heaviside step to the membrane
potential (Eq. 2 of the paper); its derivative is zero almost everywhere, so
backpropagation-through-time replaces it with a smooth *surrogate* derivative
(Neftci et al., 2019).  The paper studies two surrogates and their derivative
scaling factors:

* :class:`ArcTan` — Eq. 3, scale ``alpha``:
  ``dS/dU = (alpha / 2) / (1 + (pi * U * alpha / 2)^2)``
* :class:`FastSigmoid` — Eq. 4, scale ``k``:
  ``dS/dU = 1 / (1 + k * |U|)^2``

Additional surrogates (:class:`Sigmoid`, :class:`Triangular`,
:class:`PiecewiseLinear`, :class:`StraightThrough`) are provided for the
extension experiments and for parity with snnTorch's surrogate module.

All surrogates share the :class:`SurrogateFunction` interface and can be
looked up by name through :func:`get_surrogate`.
"""

from repro.surrogate.base import SurrogateFunction, SpikeFunction, spike
from repro.surrogate.arctan import ArcTan
from repro.surrogate.fast_sigmoid import FastSigmoid
from repro.surrogate.sigmoid import Sigmoid
from repro.surrogate.triangular import Triangular
from repro.surrogate.piecewise import PiecewiseLinear
from repro.surrogate.straight_through import StraightThrough
from repro.surrogate.registry import register_surrogate, get_surrogate, available_surrogates

__all__ = [
    "SurrogateFunction",
    "SpikeFunction",
    "spike",
    "ArcTan",
    "FastSigmoid",
    "Sigmoid",
    "Triangular",
    "PiecewiseLinear",
    "StraightThrough",
    "register_surrogate",
    "get_surrogate",
    "available_surrogates",
]
