"""Straight-through estimator surrogate."""

from __future__ import annotations

import numpy as np

from repro.surrogate.base import SurrogateFunction


class StraightThrough(SurrogateFunction):
    r"""Straight-through estimator: the gradient passes unchanged.

    .. math:: \frac{dS}{dU} = 1

    ``scale`` multiplies the pass-through gradient (default 1.0).  Included
    as the simplest possible baseline for the surrogate comparison.
    """

    name = "straight_through"

    def __init__(self, scale: float = 1.0) -> None:
        super().__init__(scale)

    def forward_smooth(self, u: np.ndarray) -> np.ndarray:
        return np.asarray(u, dtype=np.float64)

    def derivative(self, u: np.ndarray) -> np.ndarray:
        return np.full_like(np.asarray(u, dtype=np.float64), self.scale)
