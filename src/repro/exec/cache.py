"""Content-addressed on-disk cache for experiment records.

A sweep cell is fully determined by its resolved
:class:`~repro.core.config.ExperimentConfig` (every RNG in the pipeline —
dataset synthesis, train/test split, weight init, encoders, batch shuffling —
is seeded from config fields), the accelerator model it is evaluated on, and
the code that trains it.  The cache key is therefore a SHA-256 digest over:

* the full config as a nested dict (including the :class:`ReproScale`),
* a fingerprint of the accelerator (class name + its dataclass config),
* evaluation routing flags (``use_runtime``),
* code-relevant versions: the package version, NumPy's version, the cache
  schema version, and :data:`TRAINING_CODE_VERSION` — a marker that must be
  bumped whenever a change alters training numerics (optimizer math, LIF
  step semantics, loss definitions, ...), which invalidates every cached
  record at once.

Records are stored as pickles (they are plain dataclass trees) next to a
small JSON sidecar holding the hashed payload, so a cache directory can be
audited without unpickling anything.

Layout::

    <root>/<key[:2]>/<key>.pkl    # pickled ExperimentRecord
    <root>/<key[:2]>/<key>.json   # human-readable key payload

The default root is ``.repro_cache/experiments`` under the current working
directory, overridable with the ``REPRO_CACHE_DIR`` environment variable or
the ``root`` argument.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

import numpy as np

from repro.obs.metrics import default_registry
from repro.utils import atomic_write

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import ExperimentConfig
    from repro.core.experiment import ExperimentRecord

#: Bump when the on-disk layout or key payload structure changes.
CACHE_SCHEMA_VERSION = 1

#: Bump whenever a code change alters training/evaluation numerics, so that
#: stale records can never be served for results the current code would not
#: reproduce.  The suffix names the change that last required a bump.
TRAINING_CODE_VERSION = "3-maxpool-argmax-backward"

PathLike = Union[str, Path]


@dataclass(frozen=True)
class CacheEntry:
    """One stored record as seen by the inspection/eviction machinery.

    Attributes
    ----------
    key:
        Full content key (the pickle's stem).
    size_bytes:
        Pickle plus sidecar size on disk.
    last_used:
        POSIX timestamp of the last store *or cache hit* (loads touch the
        pickle's mtime, which is what makes the sweep LRU rather than FIFO).
    summary:
        Human-readable hyperparameter summary parsed from the JSON sidecar
        (empty when the sidecar is missing or unreadable).
    """

    key: str
    size_bytes: int
    last_used: float
    summary: str = ""


def _summarise_sidecar(sidecar: Path) -> str:
    """One-line config summary from a key-payload sidecar (best effort).

    A *missing* sidecar yields an empty summary; one that exists but cannot
    be parsed is reported as corrupt rather than silently blank, so
    ``repro.exec inspect`` surfaces on-disk damage instead of hiding it.
    """
    try:
        payload = json.loads(sidecar.read_text())
    except OSError:
        return "<unreadable sidecar>" if sidecar.exists() else ""
    except ValueError:
        return "<corrupt sidecar (not valid JSON)>"
    config = payload.get("config", {})
    if not isinstance(config, dict):
        return "<corrupt sidecar (unexpected structure)>"
    parts = []
    for field_name in ("surrogate", "surrogate_scale", "beta", "threshold", "encoder"):
        if field_name in config:
            parts.append(f"{field_name}={config[field_name]}")
    scale = config.get("scale")
    if isinstance(scale, dict) and "name" in scale:
        parts.append(f"scale={scale['name']}")
    return " ".join(str(p) for p in parts)


def jsonable(value: Any) -> Any:
    """Coerce a value into something ``json.dumps`` renders deterministically.

    Arrays are rendered as a shape/dtype/content digest (their repr elides
    elements, which could make distinct values collide); anything else
    unrecognised falls back to ``repr``.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: jsonable(v) for k, v in dataclasses.asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return {
            "ndarray": {
                "shape": list(value.shape),
                "dtype": str(value.dtype),
                "sha256": hashlib.sha256(np.ascontiguousarray(value).tobytes()).hexdigest(),
            }
        }
    if isinstance(value, (np.integer, np.floating)):
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _accelerator_fingerprint(accelerator: Any) -> Optional[Dict[str, Any]]:
    """Stable description of the hardware model a record was evaluated on.

    Covers every public attribute (for the repo's accelerators these are all
    dataclasses: config, power/cost/latency models, mapping config), so a
    differently-calibrated platform never collides with a cached record.  An
    exotic attribute whose repr is not stable merely makes the key unstable
    — a cache miss and a retrain, never a stale hit.
    """
    if accelerator is None:
        return None
    fingerprint: Dict[str, Any] = {"class": type(accelerator).__name__}
    attrs = {
        name: jsonable(value)
        for name, value in sorted(vars(accelerator).items())
        if not name.startswith("_")
    }
    if attrs:
        fingerprint["attrs"] = attrs
    return fingerprint


def _key_payload(
    config: "ExperimentConfig",
    accelerator: Any = None,
    use_runtime: bool = True,
) -> Dict[str, Any]:
    """Everything the cache key covers — hashed by :func:`experiment_cache_key`
    and written verbatim (pretty-printed) as the audit sidecar."""
    import repro

    config_dict = jsonable(config)
    # The label is a cosmetic report string with no effect on training, and
    # different sweeps label identical hyperparameters differently (e.g. the
    # Figure 2 grid cell "beta=0.7, theta=1.5" vs the comparison's
    # "beta=0.7, theta=1.5 (vs prior work)").  Excluding it lets those
    # sweeps share cached trainings; the executor re-labels served records.
    config_dict.pop("label", None)
    return {
        "schema": CACHE_SCHEMA_VERSION,
        "code": TRAINING_CODE_VERSION,
        "repro_version": repro.__version__,
        "numpy_version": np.__version__,
        "config": config_dict,
        "accelerator": _accelerator_fingerprint(accelerator),
        "use_runtime": bool(use_runtime),
    }


def experiment_cache_key(
    config: "ExperimentConfig",
    accelerator: Any = None,
    use_runtime: bool = True,
) -> str:
    """SHA-256 content key for one experiment cell (see module docstring)."""
    payload = _key_payload(config, accelerator=accelerator, use_runtime=use_runtime)
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def key_payload_json(
    config: "ExperimentConfig",
    accelerator: Any = None,
    use_runtime: bool = True,
) -> str:
    """The pretty-printed key payload, written as the sidecar for auditing."""
    payload = _key_payload(config, accelerator=accelerator, use_runtime=use_runtime)
    return json.dumps(payload, sort_keys=True, indent=2)


class ExperimentCache:
    """Content-addressed store of :class:`ExperimentRecord` pickles.

    Parameters
    ----------
    root:
        Cache directory.  Defaults to ``$REPRO_CACHE_DIR`` or
        ``.repro_cache/experiments`` under the current working directory.

    Attributes
    ----------
    hits, misses, stores:
        Running counters for this cache instance (used by benchmarks and the
        warm-rerun acceptance test: a fully warm sweep re-run must report
        ``misses == 0``).
    """

    def __init__(self, root: Optional[PathLike] = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or Path(".repro_cache") / "experiments"
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        # Per-instance attribute counters above stay the benchmark/test API;
        # the process-wide registry instruments below aggregate across every
        # cache instance for /metrics scrapes.
        registry = default_registry()
        self._m_hits = registry.counter(
            "repro_exec_cache_hits_total", "Experiment-cache lookups served from disk."
        )
        self._m_misses = registry.counter(
            "repro_exec_cache_misses_total",
            "Experiment-cache lookups that missed (absent or unreadable entry).",
        )
        self._m_stores = registry.counter(
            "repro_exec_cache_stores_total", "Experiment records persisted to the cache."
        )

    # ------------------------------------------------------------------ #
    def key(self, config: "ExperimentConfig", accelerator: Any = None, use_runtime: bool = True) -> str:
        """The content key a record for this configuration is stored under."""
        return experiment_cache_key(config, accelerator=accelerator, use_runtime=use_runtime)

    def path_for(self, key: str) -> Path:
        """On-disk pickle path for ``key`` (``<root>/<key[:2]>/<key>.pkl``)."""
        return self.root / key[:2] / f"{key}.pkl"

    def contains(self, key: str) -> bool:
        """Whether a record is stored under ``key`` (no unpickling)."""
        return self.path_for(key).exists()

    # ------------------------------------------------------------------ #
    def load(self, key: str) -> Optional["ExperimentRecord"]:
        """Return the cached record for ``key``, or ``None`` on a miss.

        A corrupt or unreadable entry counts as a miss (it will be
        re-trained and overwritten) rather than failing the sweep.
        """
        path = self.path_for(key)
        if not path.exists():
            self.misses += 1
            self._m_misses.inc()
            return None
        try:
            with open(path, "rb") as fh:
                record = pickle.load(fh)
        except Exception:
            self.misses += 1
            self._m_misses.inc()
            return None
        # Touch the entry so the size-budget sweep evicts least-recently
        # *used* records, not merely least-recently written ones.
        with contextlib.suppress(OSError):
            os.utime(path)
        self.hits += 1
        self._m_hits.inc()
        return record

    def store(
        self,
        key: str,
        record: "ExperimentRecord",
        accelerator: Any = None,
        use_runtime: bool = True,
    ) -> Path:
        """Persist one record under its content key (atomic rename).

        Both the pickle and its JSON audit sidecar are published with the
        same unique-temp-file + ``os.replace`` pattern, so concurrent sweeps
        sharing a cache directory can both store the same key (last writer
        wins) and neither file can ever be observed half-written.
        """
        path = self.path_for(key)
        atomic_write(path, pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL))
        atomic_write(
            path.with_suffix(".json"),
            key_payload_json(record.config, accelerator=accelerator, use_runtime=use_runtime).encode("utf-8"),
        )
        self.stores += 1
        self._m_stores.inc()
        return path

    # ------------------------------------------------------------------ #
    # Inspection and eviction
    # ------------------------------------------------------------------ #
    def entries(self) -> List[CacheEntry]:
        """Every stored record, most recently used first."""
        found: List[CacheEntry] = []
        if not self.root.exists():
            return found
        for path in self.root.glob("*/*.pkl"):
            sidecar = path.with_suffix(".json")
            try:
                stat = path.stat()
            except OSError:
                continue  # racing remover
            size = stat.st_size
            with contextlib.suppress(OSError):
                size += sidecar.stat().st_size
            found.append(
                CacheEntry(
                    key=path.stem,
                    size_bytes=size,
                    last_used=stat.st_mtime,
                    summary=_summarise_sidecar(sidecar),
                )
            )
        found.sort(key=lambda entry: entry.last_used, reverse=True)
        return found

    def total_bytes(self) -> int:
        """Bytes occupied by every pickle + sidecar under the root."""
        return sum(entry.size_bytes for entry in self.entries())

    def remove(self, key: str) -> bool:
        """Delete one entry (pickle + sidecar); returns whether it existed."""
        path = self.path_for(key)
        existed = path.exists()
        path.unlink(missing_ok=True)
        path.with_suffix(".json").unlink(missing_ok=True)
        return existed

    def sweep(self, max_bytes: int) -> List[CacheEntry]:
        """Evict least-recently-used entries until the cache fits ``max_bytes``.

        Returns the evicted entries (oldest first).  A ``max_bytes`` of zero
        clears everything; a budget the cache already fits evicts nothing.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be non-negative, got {max_bytes}")
        entries = self.entries()
        total = sum(entry.size_bytes for entry in entries)
        evicted: List[CacheEntry] = []
        for entry in reversed(entries):  # least recently used first
            if total <= max_bytes:
                break
            self.remove(entry.key)
            total -= entry.size_bytes
            evicted.append(entry)
        return evicted

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every cached entry; returns how many records were removed.

        Also reclaims stale ``*.tmp`` files orphaned by killed writers,
        which :meth:`entries` (and therefore :meth:`sweep`) never see.
        """
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*.pkl"):
            sidecar = path.with_suffix(".json")
            path.unlink(missing_ok=True)
            sidecar.unlink(missing_ok=True)
            removed += 1
        for stale in self.root.glob("*/*.tmp"):
            stale.unlink(missing_ok=True)
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExperimentCache(root={str(self.root)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
