"""Parallel experiment executor with caching and structured progress.

:func:`run_experiments` is the single entry point every sweep routes
through.  It takes an ordered list of configurations, satisfies as many as
possible from the :class:`~repro.exec.cache.ExperimentCache`, then runs the
remaining cells either serially or across a process pool.  The pool start
method defaults to ``fork`` where the platform offers it and falls back to
``spawn`` otherwise (macOS, Windows), so ``workers>1`` is honoured
everywhere; :func:`resolve_start_method` picks, and
``REPRO_SWEEP_START_METHOD`` or the ``start_method=`` argument override.

Determinism
-----------
``run_experiment`` derives every random stream from config fields, so a cell
computes the same record no matter which process runs it, in what order.
As belt and braces against any stray use of NumPy's *global* RNG, the worker
additionally reseeds ``np.random`` per cell from a hash of the config — the
serial path runs the exact same wrapper, which is what makes parallel
results bit-for-bit identical to serial ones (asserted by
``tests/test_exec_executor.py`` and the sweep benchmark).

Failure policy
--------------
At the hundreds-of-cells scale of the companion characterization paper, one
poisoned cell must not abort a whole grid.  ``retries=N`` re-runs a failing
cell up to ``N`` more times with jittered exponential backoff between
attempts — the RNG is reseeded identically before every attempt, so a
retried success is bit-identical to a first-attempt success (and to the
cached record).  ``on_error="collect"`` turns a cell that exhausts its
retries into a :class:`FailedCell` entry in the returned list (carrying the
worker's full traceback) while every other cell completes;
``on_error="raise"`` (the default, historical behaviour) aborts the sweep
with :class:`CellExecutionError` on first failure.

Progress
--------
Each cell emits structured :class:`ProgressEvent` values (``start`` /
``done`` / ``cached`` / ``error``) to an optional callback; ``verbose=True``
installs a stdout printer.  Events always carry ``index``/``total``/``label``
so callers can render progress bars without parsing strings.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import ExperimentConfig
from repro.core.experiment import ExperimentRecord, run_experiment
from repro.exec.cache import ExperimentCache, experiment_cache_key
from repro.obs.metrics import default_registry
from repro.obs.trace import default_tracer

ProgressCallback = Callable[["ProgressEvent"], None]
CacheSpec = Union[None, bool, str, "os.PathLike[str]", ExperimentCache]


@dataclass(frozen=True)
class ProgressEvent:
    """One structured progress notification from the executor.

    Attributes
    ----------
    kind:
        ``"start"`` (cell dispatched), ``"done"`` (cell trained),
        ``"cached"`` (cell served from the result cache) or ``"error"``.
    index, total:
        Position of the cell in the submitted config list.
    label:
        The config's human-readable label (``config.describe()``).
    seconds:
        Wall-clock seconds the cell took (0 for ``start``/``cached``).
    error:
        Stringified exception for ``kind == "error"``.
    timestamp:
        Wall-clock ``time.time()`` at which the event was emitted (0.0 when
        an event is constructed by hand without one), so progress streams
        can be correlated with traces and structured logs.
    """

    kind: str
    index: int
    total: int
    label: str
    seconds: float = 0.0
    error: str = ""
    timestamp: float = 0.0


def _print_progress(event: ProgressEvent) -> None:
    """Default stdout reporter installed by ``verbose=True``."""
    prefix = f"[sweep {event.index + 1}/{event.total}]"
    if event.kind == "start":
        print(f"{prefix} training {event.label}")
    elif event.kind == "cached":
        print(f"{prefix} cache hit for {event.label}")
    elif event.kind == "done":
        print(f"{prefix} finished {event.label} in {event.seconds:.1f}s")
    else:
        print(f"{prefix} FAILED {event.label}: {event.error}")


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve the worker count: argument, then ``REPRO_SWEEP_WORKERS``, then 1.

    A malformed or empty env value falls back to serial rather than failing
    a sweep that never asked for parallelism.
    """
    if workers is None:
        try:
            workers = int(os.environ.get("REPRO_SWEEP_WORKERS", "1"))
        except ValueError:
            workers = 1
    return max(1, int(workers))


def resolve_cache(cache: CacheSpec) -> Optional[ExperimentCache]:
    """Normalise the ``cache=`` argument accepted by every sweep front-end.

    ``None``/``False`` disable caching, ``True`` uses the default cache
    location, a path opens a cache rooted there, and an
    :class:`ExperimentCache` instance is used as-is.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return ExperimentCache()
    if isinstance(cache, ExperimentCache):
        return cache
    return ExperimentCache(cache)


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_start_method(start_method: Optional[str] = None) -> str:
    """Resolve the pool start method: argument, then env, then the platform.

    The default prefers ``fork`` (cheap, inherits the warmed parent) and
    falls back to ``spawn`` where fork does not exist — cells are
    deterministic per config, so both produce bit-identical records; only
    startup cost differs.  ``REPRO_SWEEP_START_METHOD`` overrides the
    default; an explicit argument overrides both.  Asking for a method the
    platform does not offer is an error for the argument, while a
    malformed env value falls back to the platform default rather than
    failing a sweep that never asked for it.
    """
    available = multiprocessing.get_all_start_methods()
    if start_method is not None:
        if start_method not in available:
            raise ValueError(
                f"start_method {start_method!r} is not available on this platform "
                f"(choose from {sorted(available)})"
            )
        return start_method
    env = os.environ.get("REPRO_SWEEP_START_METHOD", "").strip().lower()
    if env in available:
        return env
    return "fork" if fork_available() else "spawn"


def _config_seed(config: ExperimentConfig) -> int:
    """Deterministic 32-bit seed for the worker's global RNG, per config."""
    key = experiment_cache_key(config)
    return int(key[:8], 16)


#: ``on_error`` policy: abort the sweep on the first failing cell (default).
ON_ERROR_RAISE = "raise"
#: ``on_error`` policy: report failing cells as :class:`FailedCell` records.
ON_ERROR_COLLECT = "collect"

_ON_ERROR_POLICIES = (ON_ERROR_RAISE, ON_ERROR_COLLECT)


@dataclass(frozen=True)
class FailedCell:
    """A sweep cell that failed every attempt, under ``on_error="collect"``.

    Occupies the cell's slot in the returned results list, so positional
    correspondence with the submitted configs is preserved.  Filter with
    ``isinstance(r, FailedCell)`` (or its truthiness: a ``FailedCell`` is
    falsy, so ``[r for r in results if r]`` keeps only real records).

    Attributes
    ----------
    index:
        Position of the cell in the submitted config list.
    label:
        The config's human-readable label (``config.describe()``).
    error:
        Full formatted traceback from the final failed attempt, captured
        where the cell actually ran.
    attempts:
        Total attempts made (1 + retries actually used).
    """

    index: int
    label: str
    error: str
    attempts: int

    def __bool__(self) -> bool:
        """``False``, so failed cells filter out like missing records."""
        return False


class CellExecutionError(RuntimeError):
    """Raised in the parent when a sweep cell fails (in-process or in a worker).

    The message embeds the failing cell's label and the full formatted
    traceback from where the cell actually ran, so the failure site survives
    the process boundary even though the original exception object does not.
    """

    def __init__(self, label: str, formatted_traceback: str) -> None:
        super().__init__(f"sweep cell '{label}' failed:\n{formatted_traceback}")
        self.label = label
        self.traceback = formatted_traceback


class _CellFailure:
    """A cell's failure, carried back from the worker with its index intact.

    Only the *formatted traceback string* travels — never the live exception
    object.  Pickling strips ``__traceback__`` anyway, and an exception whose
    attributes do not pickle would otherwise surface as multiprocessing's
    opaque ``MaybeEncodingError`` with no hint of which cell blew up.
    """

    __slots__ = ("traceback", "attempts")

    def __init__(self, formatted_traceback: str, attempts: int = 1) -> None:
        self.traceback = formatted_traceback
        self.attempts = attempts


def _run_cell(payload: Tuple[int, ExperimentConfig, Any, bool, bool, int, float]):
    """Train one cell; shared by the serial path and every pool worker.

    Returns ``(index, record_or_failure, seconds)`` — failures are wrapped
    rather than raised so the parent can attribute the error to the right
    cell even with ``imap_unordered``.  Each of the ``1 + retries``
    attempts reseeds the global RNG from the *same* config-derived seed, so
    a retried success computes exactly the record a first-attempt success
    would have; the backoff between attempts is exponential with a jitter
    drawn deterministically from ``(config seed, attempt)``.
    """
    index, config, accelerator, use_runtime, verbose, retries, backoff_s = payload
    seed = _config_seed(config)
    start = time.perf_counter()
    for attempt in range(1 + retries):
        if attempt:
            jitter = float(np.random.default_rng([seed, attempt]).uniform(0.5, 1.5))
            time.sleep(backoff_s * (2.0 ** (attempt - 1)) * jitter)
        np.random.seed(seed)
        try:
            record = run_experiment(
                config, accelerator=accelerator, verbose=verbose, use_runtime=use_runtime
            )
        except Exception:
            if attempt == retries:
                return index, _CellFailure(traceback.format_exc(), attempts=attempt + 1), time.perf_counter() - start
        else:
            return index, record, time.perf_counter() - start


def run_experiments(
    configs: Sequence[ExperimentConfig],
    *,
    workers: Optional[int] = None,
    start_method: Optional[str] = None,
    cache: CacheSpec = None,
    accelerator: Any = None,
    use_runtime: bool = True,
    verbose: bool = False,
    progress: Optional[ProgressCallback] = None,
    on_error: str = ON_ERROR_RAISE,
    retries: int = 0,
    retry_backoff_s: float = 0.05,
) -> List[Union[ExperimentRecord, FailedCell]]:
    """Run every configuration and return records in submission order.

    Parameters
    ----------
    configs:
        The sweep cells, in the order results should be returned.
    workers:
        Process-pool size (default: ``REPRO_SWEEP_WORKERS`` or 1).  With one
        worker cells run serially in this process; results are identical
        either way.
    start_method:
        Pool start method (default: see :func:`resolve_start_method` —
        ``fork`` where available, ``spawn`` otherwise).
    cache:
        See :func:`resolve_cache`.  Hits skip training entirely; fresh
        records are stored as soon as they complete, so an interrupted sweep
        resumes from where it stopped.
    accelerator:
        Hardware platform model forwarded to ``run_experiment`` (part of the
        cache key).
    use_runtime:
        Forwarded to ``run_experiment`` (part of the cache key).
    verbose:
        Print per-cell progress lines and per-epoch training logs.
    progress:
        Structured :class:`ProgressEvent` callback (overrides the default
        printer; receives events regardless of ``verbose``).
    on_error:
        ``"raise"`` (default) aborts the sweep with
        :class:`CellExecutionError` when a cell exhausts its retries;
        ``"collect"`` puts a :class:`FailedCell` in that cell's result slot
        and lets the rest of the grid complete.
    retries:
        Extra attempts per failing cell (0 = fail on first error).  Every
        attempt is identically reseeded, so flaky-environment retries
        cannot change a record's bits.
    retry_backoff_s:
        Base delay before the first retry; subsequent retries back off
        exponentially with deterministic per-cell jitter.
    """
    if on_error not in _ON_ERROR_POLICIES:
        raise ValueError(f"on_error must be one of {_ON_ERROR_POLICIES}, got {on_error!r}")
    if retries < 0:
        raise ValueError(f"retries must be non-negative, got {retries}")
    if retry_backoff_s < 0:
        raise ValueError(f"retry_backoff_s must be non-negative, got {retry_backoff_s}")
    configs = list(configs)
    total = len(configs)
    store = resolve_cache(cache)
    reporter = progress if progress is not None else (_print_progress if verbose else None)
    registry = default_registry()
    m_cells = registry.counter(
        "repro_exec_cells_total", "Sweep cells submitted to run_experiments."
    )
    m_cached = registry.counter(
        "repro_exec_cached_cells_total", "Sweep cells satisfied from the experiment cache."
    )
    m_done = registry.counter(
        "repro_exec_completed_cells_total", "Sweep cells that trained to completion."
    )
    m_failed = registry.counter(
        "repro_exec_failed_cells_total", "Sweep cells that exhausted their retries."
    )
    m_cells.inc(total)
    tracer = default_tracer()
    sweep_trace = tracer.mint_trace()
    sweep_span = (
        tracer.begin("exec.sweep", sweep_trace, total=total) if sweep_trace else None
    )

    def emit(kind: str, index: int, seconds: float = 0.0, error: str = "") -> None:
        if reporter is not None:
            reporter(
                ProgressEvent(
                    kind=kind,
                    index=index,
                    total=total,
                    label=configs[index].describe(),
                    seconds=seconds,
                    error=error,
                    timestamp=time.time(),
                )
            )

    results: List[Union[None, ExperimentRecord, FailedCell]] = [None] * total
    keys: List[Optional[str]] = [None] * total
    pending: List[int] = []
    for i, config in enumerate(configs):
        if store is not None:
            keys[i] = store.key(config, accelerator=accelerator, use_runtime=use_runtime)
            record = store.load(keys[i])
            if record is not None:
                # The key deliberately ignores the cosmetic label, so a hit
                # may come from a differently-labelled sweep; serve it under
                # the label this caller asked for.
                if record.config != config:
                    record.config = config
                results[i] = record
                m_cached.inc()
                emit("cached", i)
                continue
        pending.append(i)

    def record_cell_span(index: int, seconds: float, status: str) -> None:
        """Record one ``exec.cell`` span under the sweep root (no-op untraced)."""
        if sweep_span is None:
            return
        now = time.perf_counter()
        tracer.record(
            "exec.cell",
            sweep_trace,
            sweep_span.span_id,
            now - seconds,
            now,
            index=index,
            label=configs[index].describe(),
            status=status,
        )

    def finish(index: int, record: ExperimentRecord, seconds: float) -> None:
        results[index] = record
        if store is not None:
            store.store(keys[index], record, accelerator=accelerator, use_runtime=use_runtime)
        m_done.inc()
        record_cell_span(index, seconds, "done")
        emit("done", index, seconds=seconds)

    def settle(index: int, outcome, seconds: float) -> None:
        """Record a completed cell, or apply the failure policy with attribution."""
        if isinstance(outcome, _CellFailure):
            # The event and the raised error both carry the worker's full
            # stack as text — the original exception object never crosses
            # the process boundary (see _CellFailure).
            m_failed.inc()
            record_cell_span(index, seconds, "error")
            emit("error", index, seconds=seconds, error=outcome.traceback)
            if on_error == ON_ERROR_RAISE:
                raise CellExecutionError(configs[index].describe(), outcome.traceback)
            results[index] = FailedCell(
                index=index,
                label=configs[index].describe(),
                error=outcome.traceback,
                attempts=outcome.attempts,
            )
            return
        finish(index, outcome, seconds)

    try:
        if pending:
            payloads = [
                (i, configs[i], accelerator, use_runtime, verbose, int(retries), float(retry_backoff_s))
                for i in pending
            ]
            nworkers = min(resolve_workers(workers), len(pending))
            if nworkers > 1:
                method = resolve_start_method(start_method)
                for i in pending:
                    emit("start", i)
                ctx = multiprocessing.get_context(method)
                with ctx.Pool(processes=nworkers) as pool:
                    for index, outcome, seconds in pool.imap_unordered(_run_cell, payloads):
                        settle(index, outcome, seconds)
            else:
                # _run_cell reseeds the global RNG per cell (the serial==parallel
                # bit-identity guarantee); running in the caller's process, that
                # must not clobber the caller's own np.random stream.
                rng_state = np.random.get_state()
                try:
                    for payload in payloads:
                        emit("start", payload[0])
                        settle(*_run_cell(payload))
                finally:
                    np.random.set_state(rng_state)
    finally:
        if sweep_span is not None:
            sweep_span.end(pending=len(pending), cached=total - len(pending))

    # Every cell either came from the cache, completed above, or (under
    # "collect") holds its FailedCell, so the list is fully populated.
    return results  # type: ignore[return-value]
