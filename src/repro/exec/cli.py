"""Command-line interface for the experiment cache (``python -m repro.exec``).

Subcommands operate on the cache directory resolved exactly like the
library default (``--root`` argument, then ``REPRO_CACHE_DIR``, then
``.repro_cache/experiments``):

``inspect``
    List every cached record with its key, size, age and the
    hyperparameter summary parsed from the JSON audit sidecar.
``clear``
    Delete every cached record.
``sweep --max-mb N``
    Evict least-recently-used records until the cache fits the budget.
"""

from __future__ import annotations

import argparse
import time
from typing import List, Optional, Sequence

from repro.exec.cache import CacheEntry, ExperimentCache


def _format_size(size_bytes: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(size_bytes) < 1024.0 or unit == "GiB":
            return f"{size_bytes:.1f} {unit}" if unit != "B" else f"{int(size_bytes)} B"
        size_bytes /= 1024.0
    return f"{size_bytes:.1f} GiB"  # pragma: no cover - unreachable


def _format_age(seconds: float) -> str:
    if seconds < 120:
        return f"{seconds:.0f}s"
    if seconds < 7200:
        return f"{seconds / 60:.0f}m"
    if seconds < 48 * 3600:
        return f"{seconds / 3600:.1f}h"
    return f"{seconds / 86400:.1f}d"


def _print_entries(entries: List[CacheEntry], now: Optional[float] = None) -> None:
    now = time.time() if now is None else now
    print(f"{'key':<14} {'size':>10} {'age':>7}  summary")
    for entry in entries:
        print(
            f"{entry.key[:12] + '..':<14} {_format_size(entry.size_bytes):>10} "
            f"{_format_age(max(now - entry.last_used, 0.0)):>7}  {entry.summary}"
        )


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``python -m repro.exec`` cache CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec",
        description="Inspect and manage the experiment result cache.",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or .repro_cache/experiments)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("inspect", help="list cached records with size, age and config summary")
    sub.add_parser("clear", help="delete every cached record")
    sweep = sub.add_parser("sweep", help="evict least-recently-used records over a size budget")
    sweep.add_argument("--max-mb", type=float, required=True, help="size budget in MiB")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the cache CLI; returns the process exit code."""
    args = build_parser().parse_args(argv)
    cache = ExperimentCache(args.root)

    if args.command == "inspect":
        entries = cache.entries()
        if not entries:
            print(f"cache at {cache.root} is empty")
            return 0
        print(f"cache at {cache.root}: {len(entries)} records, {_format_size(cache.total_bytes())}")
        _print_entries(entries)
        return 0

    if args.command == "clear":
        removed = cache.clear()
        print(f"removed {removed} records from {cache.root}")
        return 0

    if args.command == "sweep":
        if args.max_mb < 0:
            print("--max-mb must be non-negative")
            return 2
        evicted = cache.sweep(int(args.max_mb * 1024 * 1024))
        print(
            f"evicted {len(evicted)} records from {cache.root}; "
            f"{len(cache)} remain ({_format_size(cache.total_bytes())})"
        )
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
