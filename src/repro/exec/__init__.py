"""Sweep execution subsystem: parallel experiment runner + result cache.

Every sweep the paper reports (the Figure 1 surrogate-scale sweep, the
Figure 2 beta x theta cross-sweep, the encoding ablation and the prior-work
comparison) is a bag of independent :func:`~repro.core.experiment.run_experiment`
calls — embarrassingly parallel work that the seed implementation executed
one cell at a time.  This subpackage provides:

* :func:`~repro.exec.executor.run_experiments` — runs a list of
  :class:`~repro.core.config.ExperimentConfig` across a process pool with
  deterministic per-config seeding and structured progress events.  The
  pool forks where the platform allows and spawns otherwise (see
  :func:`~repro.exec.executor.resolve_start_method`); ``workers=1`` (the
  default) runs a serial loop.  Parallel results are bit-for-bit identical
  to serial ones under either start method.  ``retries=`` re-runs flaky
  cells with identical seeding (bit-identical records on success) and
  ``on_error="collect"`` reports a poisoned cell as a
  :class:`~repro.exec.executor.FailedCell` while the rest of the grid
  completes.
* :class:`~repro.exec.cache.ExperimentCache` — a content-addressed on-disk
  cache of :class:`~repro.core.experiment.ExperimentRecord` keyed by the
  resolved configuration plus code-relevant versions, so re-running or
  extending a sweep only trains the new cells.

All four sweep front-ends in :mod:`repro.core` route through this executor
and expose its ``workers=`` / ``cache=`` knobs.
"""

from repro.exec.cache import (
    CACHE_SCHEMA_VERSION,
    TRAINING_CODE_VERSION,
    CacheEntry,
    ExperimentCache,
    experiment_cache_key,
)
from repro.exec.executor import (
    ON_ERROR_COLLECT,
    ON_ERROR_RAISE,
    CellExecutionError,
    FailedCell,
    ProgressEvent,
    resolve_cache,
    resolve_start_method,
    resolve_workers,
    run_experiments,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "TRAINING_CODE_VERSION",
    "CacheEntry",
    "CellExecutionError",
    "ExperimentCache",
    "experiment_cache_key",
    "FailedCell",
    "ON_ERROR_RAISE",
    "ON_ERROR_COLLECT",
    "ProgressEvent",
    "resolve_cache",
    "resolve_start_method",
    "resolve_workers",
    "run_experiments",
]
