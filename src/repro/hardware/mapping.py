"""Model-to-hardware mapping: workload-proportional PE allocation.

The paper's platform "efficiently allocates platform resources for the model
by leveraging the model's layer sizes and layer-wise sparsity
characteristics".  We model that as distributing a fixed budget of parallel
processing elements (PEs) across layers in proportion to each layer's
*expected* event-driven workload, so that in the lock-step pipeline no layer
is starved and none hoards idle PEs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.hardware.workload import NetworkWorkload


@dataclass(frozen=True)
class MappingConfig:
    """Configuration of the PE allocation scheme.

    Attributes
    ----------
    total_pes:
        Total number of synaptic processing elements available on the device.
    min_pes_per_layer:
        Lower bound so even nearly-silent layers can make forward progress.
    sparsity_aware:
        When ``True`` the allocation follows the measured event-driven
        workload (the paper's scheme); when ``False`` it follows dense MAC
        counts (what a sparsity-oblivious mapper would do).
    """

    total_pes: int = 1024
    min_pes_per_layer: int = 8
    sparsity_aware: bool = True

    def __post_init__(self) -> None:
        if self.total_pes <= 0:
            raise ValueError("total_pes must be positive")
        if self.min_pes_per_layer <= 0:
            raise ValueError("min_pes_per_layer must be positive")


def allocate_processing_elements(workload: NetworkWorkload, config: MappingConfig) -> Dict[str, int]:
    """Distribute PEs over layers proportionally to their workload.

    Returns a mapping from layer name to allocated PE count.  Allocation is
    proportional to the layer's event-driven synaptic operations per timestep
    (or dense MACs when ``config.sparsity_aware`` is ``False``), subject to a
    per-layer minimum; any rounding slack goes to the most loaded layer.
    """
    n_layers = len(workload.layers)
    if config.total_pes < config.min_pes_per_layer * n_layers:
        raise ValueError(
            f"total_pes={config.total_pes} cannot satisfy min_pes_per_layer="
            f"{config.min_pes_per_layer} for {n_layers} layers"
        )

    if config.sparsity_aware:
        demands = [max(layer.sparse_synops_per_step, 1e-9) for layer in workload.layers]
    else:
        demands = [float(layer.dense_macs_per_step) for layer in workload.layers]
    total_demand = sum(demands)

    budget = config.total_pes - config.min_pes_per_layer * n_layers
    allocation: Dict[str, int] = {}
    for layer, demand in zip(workload.layers, demands):
        share = int(budget * demand / total_demand) if total_demand > 0 else 0
        allocation[layer.name] = config.min_pes_per_layer + share

    # Give any rounding remainder to the layer with the highest demand so the
    # bottleneck layer is never under-provisioned by the integer split.
    assigned = sum(allocation.values())
    remainder = config.total_pes - assigned
    if remainder > 0:
        busiest = max(zip(workload.layers, demands), key=lambda pair: pair[1])[0]
        allocation[busiest.name] += remainder
    return allocation
