"""End-to-end hardware evaluation: from trained-model profile to FPS/W."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

from repro.hardware.accelerator import AcceleratorRun, SparsityAwareAccelerator
from repro.hardware.workload import NetworkWorkload, workload_from_layer_specs


@dataclass
class HardwareReport:
    """The metrics the paper reports for one trained configuration.

    Attributes
    ----------
    accuracy:
        Classification accuracy of the trained model (software metric).
    firing_rate:
        Network-average spikes per neuron per timestep.
    sparsity:
        ``1 - sparse_synops / dense_macs`` over the whole network.
    latency_ms:
        End-to-end hardware latency of one inference.
    fps:
        Steady-state throughput.
    power_w:
        Total (static + dynamic) power.
    fps_per_watt:
        The paper's accelerator-efficiency metric.
    energy_per_inference_mj:
        Energy per inference in millijoules.
    run:
        The full accelerator run (PE allocation, breakdowns) for inspection.
    """

    accuracy: float
    firing_rate: float
    sparsity: float
    latency_ms: float
    fps: float
    power_w: float
    fps_per_watt: float
    energy_per_inference_mj: float
    run: Optional[AcceleratorRun] = field(default=None, repr=False)

    def as_dict(self) -> Dict[str, float]:
        """Plain-float view for serialisation and tables."""
        return {
            "accuracy": self.accuracy,
            "firing_rate": self.firing_rate,
            "sparsity": self.sparsity,
            "latency_ms": self.latency_ms,
            "fps": self.fps,
            "power_w": self.power_w,
            "fps_per_watt": self.fps_per_watt,
            "energy_per_inference_mj": self.energy_per_inference_mj,
        }


def evaluate_on_hardware(
    workload: NetworkWorkload,
    accelerator: SparsityAwareAccelerator,
    accuracy: float,
) -> HardwareReport:
    """Run the hardware model on a workload and bundle the paper's metrics."""
    if not 0.0 <= accuracy <= 1.0:
        raise ValueError(f"accuracy must lie in [0, 1], got {accuracy}")
    run = accelerator.run(workload)
    return HardwareReport(
        accuracy=float(accuracy),
        firing_rate=workload.average_firing_rate,
        sparsity=workload.overall_sparsity(),
        latency_ms=run.latency_ms,
        fps=run.fps,
        power_w=run.power.total_w,
        fps_per_watt=run.fps_per_watt,
        energy_per_inference_mj=run.energy_per_inference_j * 1e3,
        run=run,
    )
