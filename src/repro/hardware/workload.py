"""Per-layer workload descriptors for model-to-hardware mapping.

The accelerator's behaviour depends on two things per weight layer: the
*static* workload (dense MAC count, neuron count, weight memory) fixed by the
network topology, and the *dynamic* workload (average input/output spike
events per timestep) fixed by the trained model's firing behaviour.  The
paper's central observation is that training hyperparameters change the
dynamic part and therefore the hardware performance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True)
class LayerWorkload:
    """Workload of a single weight layer as seen by the accelerator.

    Attributes
    ----------
    name:
        Layer identifier (e.g. ``"conv1"``).
    kind:
        ``"conv"`` or ``"fc"``.
    num_neurons:
        Number of output neurons (conv: ``C_out * OH * OW``).
    fanout_per_event:
        Synaptic operations triggered by a single input spike event
        (conv: ``C_out * K * K`` destinations; fc: ``out_features``).
    dense_macs_per_step:
        MACs per timestep if every input were processed densely.
    weight_count:
        Number of stored weights (for BRAM sizing).
    avg_input_events_per_step:
        Measured average number of input spike events per timestep per
        sample (the dynamic sparsity the paper tunes).
    avg_output_events_per_step:
        Measured average output spikes per timestep per sample.
    """

    name: str
    kind: str
    num_neurons: int
    fanout_per_event: int
    dense_macs_per_step: int
    weight_count: int
    avg_input_events_per_step: float
    avg_output_events_per_step: float

    def __post_init__(self) -> None:
        if self.kind not in ("conv", "fc"):
            raise ValueError(f"unsupported layer kind '{self.kind}'")
        if min(self.num_neurons, self.fanout_per_event, self.dense_macs_per_step, self.weight_count) <= 0:
            raise ValueError(f"layer '{self.name}' has non-positive static workload")
        if self.avg_input_events_per_step < 0 or self.avg_output_events_per_step < 0:
            raise ValueError(f"layer '{self.name}' has negative event counts")

    @property
    def sparse_synops_per_step(self) -> float:
        """Event-driven synaptic operations per timestep (sparsity-aware cost).

        Capped at the dense MAC count: an event-driven pipeline degenerates to
        dense execution when every input is active, it never does *more* work
        than the dense equivalent.
        """
        return min(self.avg_input_events_per_step * self.fanout_per_event, float(self.dense_macs_per_step))

    @property
    def input_density(self) -> float:
        """Fraction of the dense workload that is actually exercised."""
        if self.dense_macs_per_step == 0:
            return 0.0
        return min(1.0, self.sparse_synops_per_step / self.dense_macs_per_step)

    @property
    def output_firing_rate(self) -> float:
        """Average output spikes per neuron per timestep."""
        return self.avg_output_events_per_step / self.num_neurons if self.num_neurons else 0.0


@dataclass
class NetworkWorkload:
    """Ordered collection of layer workloads plus simulation-level metadata.

    Attributes
    ----------
    layers:
        Weight layers in execution order.
    num_steps:
        Simulation timesteps per inference (``T``).
    input_events_per_step:
        Average encoder spike events per timestep feeding the first layer.
    """

    layers: List[LayerWorkload]
    num_steps: int
    input_events_per_step: float = 0.0

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("NetworkWorkload requires at least one layer")
        if self.num_steps <= 0:
            raise ValueError("num_steps must be positive")
        if self.input_events_per_step < 0:
            raise ValueError("input_events_per_step must be non-negative")

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def layer(self, name: str) -> LayerWorkload:
        """Look up a layer by name."""
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer named '{name}'")

    @property
    def total_dense_macs_per_step(self) -> int:
        return sum(l.dense_macs_per_step for l in self.layers)

    @property
    def total_sparse_synops_per_step(self) -> float:
        return sum(l.sparse_synops_per_step for l in self.layers)

    @property
    def total_neurons(self) -> int:
        return sum(l.num_neurons for l in self.layers)

    @property
    def total_weights(self) -> int:
        return sum(l.weight_count for l in self.layers)

    @property
    def average_firing_rate(self) -> float:
        """Network-wide average spikes per neuron per timestep."""
        neurons = self.total_neurons
        if neurons == 0:
            return 0.0
        return sum(l.avg_output_events_per_step for l in self.layers) / neurons

    def overall_sparsity(self) -> float:
        """1 - (event-driven synops / dense MACs), the headline sparsity figure."""
        dense = self.total_dense_macs_per_step
        if dense == 0:
            return 0.0
        return max(0.0, 1.0 - self.total_sparse_synops_per_step / dense)


def workload_from_layer_specs(
    layer_specs: Sequence[Mapping],
    firing_profile: Mapping[str, float],
    num_steps: int,
    input_events_per_step: float,
) -> NetworkWorkload:
    """Build a :class:`NetworkWorkload` from architecture specs and a firing profile.

    Parameters
    ----------
    layer_specs:
        One mapping per weight layer with keys ``name``, ``kind`` and either
        conv geometry (``in_channels``, ``out_channels``, ``kernel_size``,
        ``out_h``, ``out_w``) or fc geometry (``in_features``,
        ``out_features``).
    firing_profile:
        Mapping from layer name to measured average *output* spike events per
        timestep per sample (see :mod:`repro.analysis.sparsity`).
    num_steps:
        Simulation timesteps per inference.
    input_events_per_step:
        Average encoder events per timestep (input to the first layer).
    """
    layers: List[LayerWorkload] = []
    previous_output_events = float(input_events_per_step)
    for spec in layer_specs:
        name = spec["name"]
        kind = spec["kind"]
        if name not in firing_profile:
            raise KeyError(f"firing profile is missing layer '{name}'")
        output_events = float(firing_profile[name])
        if kind == "conv":
            c_in = int(spec["in_channels"])
            c_out = int(spec["out_channels"])
            k = int(spec["kernel_size"])
            oh, ow = int(spec["out_h"]), int(spec["out_w"])
            num_neurons = c_out * oh * ow
            fanout = c_out * k * k
            dense_macs = c_out * oh * ow * c_in * k * k
            weight_count = c_out * c_in * k * k
        elif kind == "fc":
            in_features = int(spec["in_features"])
            out_features = int(spec["out_features"])
            num_neurons = out_features
            fanout = out_features
            dense_macs = in_features * out_features
            weight_count = in_features * out_features
        else:
            raise ValueError(f"unsupported layer kind '{kind}' in spec for '{name}'")
        layers.append(
            LayerWorkload(
                name=name,
                kind=kind,
                num_neurons=num_neurons,
                fanout_per_event=fanout,
                dense_macs_per_step=dense_macs,
                weight_count=weight_count,
                avg_input_events_per_step=previous_output_events,
                avg_output_events_per_step=output_events,
            )
        )
        previous_output_events = output_events
    return NetworkWorkload(layers=layers, num_steps=num_steps, input_events_per_step=float(input_events_per_step))
