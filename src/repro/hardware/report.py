"""Human-readable rendering of hardware reports and comparisons."""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.hardware.efficiency import HardwareReport


def format_report(report: HardwareReport, title: str = "Hardware evaluation") -> str:
    """Render one :class:`HardwareReport` as an aligned text block."""
    lines = [title, "-" * len(title)]
    rows = [
        ("accuracy", f"{report.accuracy * 100:.2f} %"),
        ("firing rate", f"{report.firing_rate:.4f} spikes/neuron/step"),
        ("sparsity", f"{report.sparsity * 100:.1f} %"),
        ("latency", f"{report.latency_ms:.3f} ms"),
        ("throughput", f"{report.fps:.1f} FPS"),
        ("power", f"{report.power_w:.3f} W"),
        ("efficiency", f"{report.fps_per_watt:.1f} FPS/W"),
        ("energy / inference", f"{report.energy_per_inference_mj:.3f} mJ"),
    ]
    width = max(len(name) for name, _ in rows)
    lines.extend(f"  {name.ljust(width)} : {value}" for name, value in rows)
    return "\n".join(lines)


def format_measured_vs_modeled(
    comparison: Mapping[str, float],
    title: str = "Serving: measured vs modeled",
) -> str:
    """Render a serving measured-vs-modeled comparison as an aligned block.

    ``comparison`` is the flat dict produced by
    :meth:`repro.serve.ServeTelemetry.hardware_comparison`: measured serving
    numbers (``measured_fps``, ``p50_ms``/``p95_ms``/``p99_ms``) next to the
    accelerator model's prediction for the same spike traffic
    (``modeled_fps``, ``modeled_latency_ms``) and their ratio.  The measured
    side runs on a host CPU, so the ratio is the software-to-accelerator
    gap the paper's hardware argument quantifies — not an error in either
    number.
    """

    def fmt(key: str, pattern: str = "{:.1f}") -> str:
        value = comparison.get(key, float("nan"))
        return "n/a" if value is None or (isinstance(value, float) and math.isnan(value)) else pattern.format(value)

    lines = [title, "-" * len(title)]
    rows = [
        ("throughput (measured)", f"{fmt('measured_fps')} FPS"),
        ("throughput (modeled)", f"{fmt('modeled_fps')} FPS"),
        ("measured / modeled", f"{fmt('fps_ratio', '{:.3f}')}x"),
        ("latency p50 (measured)", f"{fmt('p50_ms', '{:.3f}')} ms"),
        ("latency p95 (measured)", f"{fmt('p95_ms', '{:.3f}')} ms"),
        ("latency p99 (measured)", f"{fmt('p99_ms', '{:.3f}')} ms"),
        ("latency / inference (modeled)", f"{fmt('modeled_latency_ms', '{:.3f}')} ms"),
    ]
    width = max(len(name) for name, _ in rows)
    lines.extend(f"  {name.ljust(width)} : {value}" for name, value in rows)
    return "\n".join(lines)


def format_comparison(
    reports: Mapping[str, HardwareReport],
    baseline_key: str,
    title: str = "Comparison",
) -> str:
    """Render several reports side by side with ratios against a baseline.

    Parameters
    ----------
    reports:
        Mapping from configuration label to report.
    baseline_key:
        Key of the configuration every other row is normalised against.
    """
    if baseline_key not in reports:
        raise KeyError(f"baseline '{baseline_key}' not among reports {sorted(reports)}")
    baseline = reports[baseline_key]
    header = (
        f"{'configuration':<28} {'acc %':>7} {'fire':>7} {'lat ms':>8} "
        f"{'FPS':>9} {'W':>7} {'FPS/W':>9} {'vs base':>8}"
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for label, report in reports.items():
        ratio = report.fps_per_watt / baseline.fps_per_watt if baseline.fps_per_watt else float("nan")
        lines.append(
            f"{label:<28} {report.accuracy * 100:>7.2f} {report.firing_rate:>7.3f} "
            f"{report.latency_ms:>8.3f} {report.fps:>9.1f} {report.power_w:>7.3f} "
            f"{report.fps_per_watt:>9.1f} {ratio:>7.2f}x"
        )
    return "\n".join(lines)
