"""Power model: static leakage plus activity-proportional dynamic power.

Event-driven SNN accelerators burn dynamic energy per *spike-triggered*
synaptic operation, per neuron update and per memory access; everything else
is static/leakage plus clock-tree power.  This is the mechanism by which the
lower firing rates produced by the paper's hyperparameter tuning translate
into better FPS/W.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.hardware.latency import LatencyBreakdown
from repro.hardware.resources import ResourceUsage
from repro.hardware.workload import NetworkWorkload


@dataclass
class PowerBreakdown:
    """Static and dynamic power components in watts."""

    static_w: float
    synaptic_w: float
    neuron_update_w: float
    memory_w: float
    clock_w: float

    @property
    def dynamic_w(self) -> float:
        return self.synaptic_w + self.neuron_update_w + self.memory_w + self.clock_w

    @property
    def total_w(self) -> float:
        return self.static_w + self.dynamic_w

    def as_dict(self) -> Dict[str, float]:
        return {
            "static_w": self.static_w,
            "synaptic_w": self.synaptic_w,
            "neuron_update_w": self.neuron_update_w,
            "memory_w": self.memory_w,
            "clock_w": self.clock_w,
            "dynamic_w": self.dynamic_w,
            "total_w": self.total_w,
        }


@dataclass(frozen=True)
class PowerModel:
    """Energy/power coefficients calibrated to a 16 nm UltraScale+ device.

    Attributes
    ----------
    static_w_base:
        Device leakage with the design loaded but idle.
    static_w_per_lut_utilisation:
        Additional static power proportional to logic utilisation.
    energy_per_synop_j:
        Energy of one spike-triggered synaptic accumulate (weight fetch from
        BRAM + add).
    energy_per_dense_mac_j:
        Energy of one dense MAC (used by the sparsity-oblivious baseline;
        higher than a synop because of the multiplier and wider operand
        fetch).
    energy_per_neuron_update_j:
        Energy of one membrane update (leak multiply + compare + writeback).
    energy_per_spike_route_j:
        Energy to route one output spike event to the next layer's queue.
    clock_w_per_mhz:
        Clock-tree and control power per MHz of clock frequency.
    """

    static_w_base: float = 0.55
    static_w_per_lut_utilisation: float = 0.35
    energy_per_synop_j: float = 3.2e-12
    energy_per_dense_mac_j: float = 11.0e-12
    energy_per_neuron_update_j: float = 5.5e-12
    energy_per_spike_route_j: float = 1.8e-12
    clock_w_per_mhz: float = 0.0028

    def __post_init__(self) -> None:
        values = (
            self.static_w_base,
            self.energy_per_synop_j,
            self.energy_per_dense_mac_j,
            self.energy_per_neuron_update_j,
            self.energy_per_spike_route_j,
        )
        if any(v < 0 for v in values):
            raise ValueError("power coefficients must be non-negative")

    def evaluate(
        self,
        workload: NetworkWorkload,
        latency: LatencyBreakdown,
        resources: ResourceUsage,
        clock_hz: float,
        sparsity_aware: bool = True,
    ) -> PowerBreakdown:
        """Average power while the accelerator runs at full throughput."""
        fps = latency.throughput_fps
        steps_per_second = fps * workload.num_steps

        if sparsity_aware:
            synops_per_second = workload.total_sparse_synops_per_step * steps_per_second
            synaptic_w = synops_per_second * self.energy_per_synop_j
        else:
            macs_per_second = workload.total_dense_macs_per_step * steps_per_second
            synaptic_w = macs_per_second * self.energy_per_dense_mac_j

        neuron_updates_per_second = workload.total_neurons * steps_per_second
        neuron_update_w = neuron_updates_per_second * self.energy_per_neuron_update_j

        spikes_per_second = (
            sum(l.avg_output_events_per_step for l in workload.layers) + workload.input_events_per_step
        ) * steps_per_second
        memory_w = spikes_per_second * self.energy_per_spike_route_j

        lut_utilisation = min(1.0, resources.utilisation()["luts"])
        static_w = self.static_w_base + self.static_w_per_lut_utilisation * lut_utilisation
        clock_w = self.clock_w_per_mhz * clock_hz / 1e6

        return PowerBreakdown(
            static_w=static_w,
            synaptic_w=synaptic_w,
            neuron_update_w=neuron_update_w,
            memory_w=memory_w,
            clock_w=clock_w,
        )
