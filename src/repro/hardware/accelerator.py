"""Accelerator front-ends: sparsity-aware platform and dense baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.hardware.latency import LatencyBreakdown, LatencyModel
from repro.hardware.mapping import MappingConfig, allocate_processing_elements
from repro.hardware.power import PowerBreakdown, PowerModel
from repro.hardware.resources import (
    FPGAResources,
    KINTEX_ULTRASCALE_PLUS,
    ResourceCostModel,
    ResourceUsage,
    estimate_resources,
)
from repro.hardware.workload import NetworkWorkload


@dataclass(frozen=True)
class AcceleratorConfig:
    """Top-level configuration of the modelled accelerator platform.

    Attributes
    ----------
    clock_hz:
        Accelerator clock frequency.
    total_pes:
        Synaptic processing elements available for layer mapping.
    neuron_update_parallelism:
        Parallel neuron-update units per layer.
    device:
        Target FPGA device capacities.
    sparsity_aware:
        Whether the compute pipeline skips zero inputs (the paper's
        platform) or processes the dense workload (baseline).
    """

    clock_hz: float = 200e6
    total_pes: int = 1024
    neuron_update_parallelism: int = 64
    device: FPGAResources = KINTEX_ULTRASCALE_PLUS
    sparsity_aware: bool = True

    def __post_init__(self) -> None:
        if self.clock_hz <= 0 or self.total_pes <= 0 or self.neuron_update_parallelism <= 0:
            raise ValueError("AcceleratorConfig values must be positive")


class SparsityAwareAccelerator:
    """Model of the paper's in-house, sparsity-aware, lock-step accelerator.

    The accelerator:

    1. maps PEs to layers in proportion to their measured event-driven
       workload (:mod:`repro.hardware.mapping`),
    2. executes layers in a lock-step pipeline whose stage time is set by the
       slowest layer (:mod:`repro.hardware.latency`), and
    3. burns dynamic energy per spike event rather than per dense MAC
       (:mod:`repro.hardware.power`).

    Use :meth:`run` to obtain latency, resource and power results for a
    :class:`~repro.hardware.workload.NetworkWorkload`.
    """

    def __init__(
        self,
        config: Optional[AcceleratorConfig] = None,
        power_model: Optional[PowerModel] = None,
        cost_model: Optional[ResourceCostModel] = None,
    ) -> None:
        self.config = config if config is not None else AcceleratorConfig()
        self.power_model = power_model if power_model is not None else PowerModel()
        self.cost_model = cost_model if cost_model is not None else ResourceCostModel()
        self.latency_model = LatencyModel(
            clock_hz=self.config.clock_hz,
            neuron_update_parallelism=self.config.neuron_update_parallelism,
            sparsity_aware=self.config.sparsity_aware,
        )
        self.mapping_config = MappingConfig(
            total_pes=self.config.total_pes,
            sparsity_aware=self.config.sparsity_aware,
        )

    # ------------------------------------------------------------------ #
    def map(self, workload: NetworkWorkload) -> Dict[str, int]:
        """Allocate PEs to layers for the given workload."""
        return allocate_processing_elements(workload, self.mapping_config)

    def run(self, workload: NetworkWorkload) -> "AcceleratorRun":
        """Evaluate the full hardware model on a workload."""
        allocation = self.map(workload)
        latency = self.latency_model.evaluate(workload, allocation)
        resources = estimate_resources(
            workload,
            allocation,
            neuron_update_parallelism=self.config.neuron_update_parallelism,
            device=self.config.device,
            cost_model=self.cost_model,
        )
        power = self.power_model.evaluate(
            workload,
            latency,
            resources,
            clock_hz=self.config.clock_hz,
            sparsity_aware=self.config.sparsity_aware,
        )
        return AcceleratorRun(
            workload=workload,
            pe_allocation=allocation,
            latency=latency,
            resources=resources,
            power=power,
        )

    def __repr__(self) -> str:
        kind = "sparsity-aware" if self.config.sparsity_aware else "dense"
        return f"{type(self).__name__}({kind}, clock={self.config.clock_hz / 1e6:.0f} MHz, PEs={self.config.total_pes})"


class DenseBaselineAccelerator(SparsityAwareAccelerator):
    """Sparsity-oblivious baseline: identical platform, dense execution.

    Every dense MAC is executed regardless of input spikes, so latency and
    dynamic power no longer depend on firing rates — the ablation that shows
    why the paper's hyperparameter tuning only pays off on sparsity-aware
    hardware.
    """

    def __init__(
        self,
        config: Optional[AcceleratorConfig] = None,
        power_model: Optional[PowerModel] = None,
        cost_model: Optional[ResourceCostModel] = None,
    ) -> None:
        base = config if config is not None else AcceleratorConfig()
        dense_config = AcceleratorConfig(
            clock_hz=base.clock_hz,
            total_pes=base.total_pes,
            neuron_update_parallelism=base.neuron_update_parallelism,
            device=base.device,
            sparsity_aware=False,
        )
        super().__init__(config=dense_config, power_model=power_model, cost_model=cost_model)


@dataclass
class AcceleratorRun:
    """Bundle of all hardware-model outputs for one workload."""

    workload: NetworkWorkload
    pe_allocation: Dict[str, int]
    latency: LatencyBreakdown
    resources: ResourceUsage
    power: PowerBreakdown

    @property
    def fps(self) -> float:
        return self.latency.throughput_fps

    @property
    def fps_per_watt(self) -> float:
        total = self.power.total_w
        return self.fps / total if total > 0 else 0.0

    @property
    def latency_ms(self) -> float:
        return self.latency.latency_ms

    @property
    def energy_per_inference_j(self) -> float:
        return self.power.total_w / self.fps if self.fps > 0 else float("inf")
