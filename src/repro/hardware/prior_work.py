"""Model of the prior-work comparison accelerator (Ye et al., TCAD 2022).

The paper compares its fine-tuned model + in-house platform against
reference [6]: a neuromorphic accelerator supporting MLP and CNN topologies
that runs the *same network architecture on the same dataset*, but is not
sparsity-aware in its dataflow and was trained with conventional (untuned)
hyperparameters.  Two numbers from that comparison anchor the reproduction:

* the prior work's accuracy is the horizontal green line in Figure 1 that
  the tuned models beat, and
* the fine-tuned configuration (``beta=0.7``, ``theta=1.5``, fast sigmoid)
  achieves **1.72x** the prior work's FPS/W.

We model the prior accelerator as a dense, time-multiplexed design with a
fixed PE array at a comparable clock.  Its absolute FPS/W is derived from the
same power/latency models (so the comparison is apples-to-apples within the
reproduction) with the dense execution path and a less aggressive resource
allocation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.accelerator import AcceleratorConfig, AcceleratorRun, DenseBaselineAccelerator
from repro.hardware.power import PowerModel
from repro.hardware.workload import NetworkWorkload


@dataclass(frozen=True)
class PriorWorkReference:
    """Published characteristics used to anchor the comparison.

    Attributes
    ----------
    accuracy:
        Classification accuracy the prior work reports for the
        32C3-MP2-32C3-MP2-256-10 network on SVHN (the green line in Fig. 1).
        The paper states its tuned models exceed this line.
    name:
        Citation tag.
    """

    accuracy: float = 0.82
    name: str = "Ye et al., TCAD 2022 [6]"


#: Default reference values for the prior work.
PRIOR_WORK_REFERENCE = PriorWorkReference()


class PriorWorkAccelerator(DenseBaselineAccelerator):
    """Dense, time-multiplexed accelerator standing in for reference [6].

    Differences from the paper's platform, reflected in the model:

    * dense execution (no event skipping), so compute does not shrink with
      sparsity;
    * a smaller PE array that is time-multiplexed across layers rather than
      pipelined per layer, modelled by a lower total PE budget and a higher
      lock-step synchronisation overhead;
    * a slightly lower clock target.
    """

    def __init__(self, reference: PriorWorkReference = PRIOR_WORK_REFERENCE) -> None:
        config = AcceleratorConfig(
            clock_hz=150e6,
            total_pes=512,
            neuron_update_parallelism=32,
            sparsity_aware=False,
        )
        # The prior design keeps activations in wider buffers and fetches
        # weights per MAC, so its per-operation energy is higher.
        power_model = PowerModel(
            static_w_base=0.7,
            energy_per_dense_mac_j=13.0e-12,
            energy_per_neuron_update_j=7.0e-12,
            clock_w_per_mhz=0.0034,
        )
        super().__init__(config=config, power_model=power_model)
        self.reference = reference

    @property
    def reference_accuracy(self) -> float:
        """Accuracy of the prior work (the Figure 1 green line)."""
        return self.reference.accuracy
