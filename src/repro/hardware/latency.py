"""Cycle-level latency model of the layer-wise lock-step pipeline.

The accelerator processes one simulation timestep of one layer per pipeline
stage.  All layers advance in lock step: the stage interval is set by the
slowest layer for that timestep.  A single inference therefore needs
``T`` lock-step intervals to stream its last timestep into the first layer
plus ``L - 1`` further intervals to drain the pipeline, while steady-state
throughput admits a new inference every ``T`` intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.hardware.workload import LayerWorkload, NetworkWorkload


@dataclass
class LatencyBreakdown:
    """Per-layer and end-to-end timing results.

    Attributes
    ----------
    layer_cycles_per_step:
        Cycles each layer needs to process one timestep.
    lockstep_interval_cycles:
        Pipeline stage interval = max over layers (plus sync overhead).
    latency_cycles:
        End-to-end cycles for one inference.
    latency_seconds:
        ``latency_cycles / clock_hz``.
    throughput_fps:
        Steady-state inferences per second.
    """

    layer_cycles_per_step: Dict[str, float]
    lockstep_interval_cycles: float
    latency_cycles: float
    latency_seconds: float
    throughput_fps: float

    @property
    def latency_ms(self) -> float:
        return self.latency_seconds * 1e3

    @property
    def latency_us(self) -> float:
        return self.latency_seconds * 1e6

    def bottleneck_layer(self) -> str:
        """Name of the layer that sets the lock-step interval."""
        return max(self.layer_cycles_per_step, key=self.layer_cycles_per_step.get)


@dataclass(frozen=True)
class LatencyModel:
    """Analytical latency model.

    Attributes
    ----------
    clock_hz:
        Accelerator clock frequency (the paper's platform class runs at a few
        hundred MHz on Kintex UltraScale+).
    synops_per_pe_per_cycle:
        Synaptic operations a single PE retires per cycle.
    neuron_update_cycles:
        Cycles per neuron membrane update (leak + threshold check), amortised
        over the neuron-update pipeline width.
    neuron_update_parallelism:
        Number of neuron updates processed in parallel.
    lockstep_sync_overhead_cycles:
        Fixed handshake overhead added to every lock-step interval.
    sparsity_aware:
        When ``True`` compute cycles scale with spike events; when ``False``
        every dense MAC is executed (the sparsity-oblivious baseline).
    """

    clock_hz: float = 200e6
    synops_per_pe_per_cycle: float = 1.0
    neuron_update_cycles: float = 1.0
    neuron_update_parallelism: int = 64
    lockstep_sync_overhead_cycles: float = 16.0
    sparsity_aware: bool = True

    def __post_init__(self) -> None:
        if self.clock_hz <= 0 or self.synops_per_pe_per_cycle <= 0:
            raise ValueError("clock_hz and synops_per_pe_per_cycle must be positive")
        if self.neuron_update_parallelism <= 0:
            raise ValueError("neuron_update_parallelism must be positive")
        if self.lockstep_sync_overhead_cycles < 0 or self.neuron_update_cycles < 0:
            raise ValueError("cycle overheads must be non-negative")

    # ------------------------------------------------------------------ #
    def layer_cycles(self, layer: LayerWorkload, allocated_pes: int) -> float:
        """Cycles for one layer to process one simulation timestep."""
        if allocated_pes <= 0:
            raise ValueError(f"layer '{layer.name}' was allocated no PEs")
        if self.sparsity_aware:
            synops = layer.sparse_synops_per_step
        else:
            synops = float(layer.dense_macs_per_step)
        compute_cycles = synops / (allocated_pes * self.synops_per_pe_per_cycle)
        update_cycles = layer.num_neurons * self.neuron_update_cycles / self.neuron_update_parallelism
        return compute_cycles + update_cycles

    def evaluate(self, workload: NetworkWorkload, pe_allocation: Mapping[str, int]) -> LatencyBreakdown:
        """Latency and throughput of one inference under a PE allocation."""
        per_layer: Dict[str, float] = {}
        for layer in workload.layers:
            per_layer[layer.name] = self.layer_cycles(layer, int(pe_allocation[layer.name]))
        interval = max(per_layer.values()) + self.lockstep_sync_overhead_cycles
        num_layers = len(workload.layers)
        latency_cycles = (workload.num_steps + num_layers - 1) * interval
        latency_seconds = latency_cycles / self.clock_hz
        # Steady state: a new inference enters every T lock-step intervals.
        throughput_fps = self.clock_hz / (workload.num_steps * interval)
        return LatencyBreakdown(
            layer_cycles_per_step=per_layer,
            lockstep_interval_cycles=interval,
            latency_cycles=latency_cycles,
            latency_seconds=latency_seconds,
            throughput_fps=throughput_fps,
        )
