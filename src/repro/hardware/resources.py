"""FPGA resource model (LUT / FF / DSP / BRAM utilisation estimates).

The estimates are calibrated to the Kintex UltraScale+ family the paper
targets (KU3P/KU5P class).  They matter for the reproduction in two ways:
the mapper must not exceed the device, and BRAM requirements scale with the
weight memory of the model, which constrains how many PEs can be deployed —
both effects the paper's "ultra-low power resource allocation scheme"
navigates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.hardware.workload import NetworkWorkload


@dataclass(frozen=True)
class FPGAResources:
    """Capacity of a target FPGA device."""

    name: str
    luts: int
    flip_flops: int
    dsp_slices: int
    bram_kbits: int

    def __post_init__(self) -> None:
        if min(self.luts, self.flip_flops, self.dsp_slices, self.bram_kbits) <= 0:
            raise ValueError("device capacities must be positive")


#: Kintex UltraScale+ KU5P-class device (the paper's platform family).
KINTEX_ULTRASCALE_PLUS = FPGAResources(
    name="Kintex UltraScale+ (KU5P class)",
    luts=216_960,
    flip_flops=433_920,
    dsp_slices=1_824,
    bram_kbits=16_890,
)


@dataclass(frozen=True)
class ResourceCostModel:
    """Per-unit resource costs of the accelerator's building blocks.

    Attributes
    ----------
    luts_per_pe / ffs_per_pe / dsps_per_pe:
        Logic cost of one synaptic processing element (accumulator + weight
        fetch + event decode).  Spike-driven PEs do additions rather than
        multiplications, so the DSP cost is fractional (shared).
    luts_per_neuron_unit / ffs_per_neuron_unit:
        Cost of one parallel neuron-update unit (leak multiply, compare,
        reset).
    weight_bits:
        Weight precision in bits (8-bit quantised weights on-chip).
    membrane_bits:
        Membrane potential precision in bits.
    control_luts / control_ffs:
        Fixed cost of the lock-step controller and event routers.
    """

    luts_per_pe: float = 55.0
    ffs_per_pe: float = 70.0
    dsps_per_pe: float = 0.125
    luts_per_neuron_unit: float = 90.0
    ffs_per_neuron_unit: float = 110.0
    weight_bits: int = 8
    membrane_bits: int = 16
    control_luts: float = 12_000.0
    control_ffs: float = 18_000.0


@dataclass
class ResourceUsage:
    """Estimated utilisation of the target device."""

    luts: float
    flip_flops: float
    dsp_slices: float
    bram_kbits: float
    device: FPGAResources

    def utilisation(self) -> Dict[str, float]:
        """Fractional utilisation per resource class."""
        return {
            "luts": self.luts / self.device.luts,
            "flip_flops": self.flip_flops / self.device.flip_flops,
            "dsp_slices": self.dsp_slices / self.device.dsp_slices,
            "bram_kbits": self.bram_kbits / self.device.bram_kbits,
        }

    def fits(self) -> bool:
        """Whether the design fits on the device."""
        return all(v <= 1.0 for v in self.utilisation().values())

    def max_utilisation(self) -> float:
        return max(self.utilisation().values())


def estimate_resources(
    workload: NetworkWorkload,
    pe_allocation: Mapping[str, int],
    neuron_update_parallelism: int = 64,
    device: FPGAResources = KINTEX_ULTRASCALE_PLUS,
    cost_model: ResourceCostModel = ResourceCostModel(),
) -> ResourceUsage:
    """Estimate FPGA resource usage for a mapped network.

    PE logic scales with the total allocated PEs, neuron-update logic with the
    per-layer parallel update width, and BRAM with stored weights plus
    membrane state (everything is kept on-chip in the paper's design to avoid
    DRAM energy).
    """
    total_pes = sum(int(pe_allocation[layer.name]) for layer in workload.layers)
    n_layers = len(workload.layers)

    luts = cost_model.control_luts + total_pes * cost_model.luts_per_pe
    ffs = cost_model.control_ffs + total_pes * cost_model.ffs_per_pe
    luts += n_layers * neuron_update_parallelism * cost_model.luts_per_neuron_unit
    ffs += n_layers * neuron_update_parallelism * cost_model.ffs_per_neuron_unit
    dsps = total_pes * cost_model.dsps_per_pe + n_layers * neuron_update_parallelism * 0.25

    weight_kbits = workload.total_weights * cost_model.weight_bits / 1000.0
    membrane_kbits = workload.total_neurons * cost_model.membrane_bits / 1000.0
    spike_buffer_kbits = 2 * workload.total_neurons / 1000.0  # double-buffered binary spikes
    bram = weight_kbits + membrane_kbits + spike_buffer_kbits

    return ResourceUsage(luts=luts, flip_flops=ffs, dsp_slices=dsps, bram_kbits=bram, device=device)
