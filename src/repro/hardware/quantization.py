"""Post-training weight quantization for FPGA deployment.

The modelled accelerator stores weights on-chip at reduced precision (the
resource model assumes 8-bit weights).  This module provides the software
side of that deployment step: symmetric per-tensor integer quantization of a
trained model's weights, a measure of the induced quantization error, and a
helper that evaluates the accuracy cost so the deployment flow can verify
that the paper's hyperparameter conclusions survive quantization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.nn.module import Module


@dataclass(frozen=True)
class QuantizationConfig:
    """Symmetric per-tensor quantization settings.

    Attributes
    ----------
    weight_bits:
        Integer precision for weights (the accelerator model assumes 8).
    clip_percentile:
        Percentile of ``|w|`` used as the clipping range (100 = max-abs).
        Clipping slightly below the maximum trades a little saturation error
        for a finer step size on the bulk of the distribution.
    """

    weight_bits: int = 8
    clip_percentile: float = 100.0

    def __post_init__(self) -> None:
        if not 2 <= self.weight_bits <= 32:
            raise ValueError("weight_bits must lie in [2, 32]")
        if not 0.0 < self.clip_percentile <= 100.0:
            raise ValueError("clip_percentile must lie in (0, 100]")

    @property
    def levels(self) -> int:
        """Number of representable signed levels on each side of zero."""
        return 2 ** (self.weight_bits - 1) - 1


def quantize_array(values: np.ndarray, config: QuantizationConfig) -> Tuple[np.ndarray, float]:
    """Quantize one array; returns the dequantized array and the scale used."""
    magnitude = np.percentile(np.abs(values), config.clip_percentile)
    if magnitude == 0:
        return np.zeros_like(values), 0.0
    scale = magnitude / config.levels
    quantized = np.clip(np.round(values / scale), -config.levels, config.levels)
    return (quantized * scale).astype(values.dtype), float(scale)


@dataclass
class QuantizationReport:
    """Outcome of quantizing a model's weights.

    Attributes
    ----------
    scales:
        Per-parameter quantization scales.
    mean_squared_error:
        MSE between original and quantized weights, averaged over parameters.
    max_abs_error:
        Largest absolute weight perturbation introduced.
    weight_bits:
        Precision used.
    """

    scales: Dict[str, float]
    mean_squared_error: float
    max_abs_error: float
    weight_bits: int


def quantize_model(model: Module, config: QuantizationConfig = QuantizationConfig()) -> QuantizationReport:
    """Quantize every parameter of ``model`` in place (fake-quantization).

    Weights are rounded to the integer grid and written back in floating
    point (the standard deploy-time "fake quantization"), so the quantized
    model can be evaluated with the existing inference path while behaving
    exactly like the integer weights the accelerator would store.
    """
    scales: Dict[str, float] = {}
    total_sq_error = 0.0
    total_count = 0
    max_abs_error = 0.0
    for name, param in model.named_parameters():
        original = param.data.copy()
        quantized, scale = quantize_array(param.data, config)
        param.data[...] = quantized
        scales[name] = scale
        error = quantized - original
        total_sq_error += float((error ** 2).sum())
        total_count += error.size
        if error.size:
            max_abs_error = max(max_abs_error, float(np.abs(error).max()))
    mse = total_sq_error / total_count if total_count else 0.0
    return QuantizationReport(
        scales=scales,
        mean_squared_error=mse,
        max_abs_error=max_abs_error,
        weight_bits=config.weight_bits,
    )
