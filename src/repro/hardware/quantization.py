"""Post-training weight quantization for FPGA deployment.

The modelled accelerator stores weights on-chip at reduced precision (the
resource model assumes 8-bit weights).  This module provides the software
side of that deployment step: symmetric per-tensor integer quantization of a
trained model's weights, a measure of the induced quantization error, and a
helper that evaluates the accuracy cost so the deployment flow can verify
that the paper's hyperparameter conclusions survive quantization.

Two views of the same quantization are exposed:

* :func:`quantize_array` — "fake quantization": values are rounded to the
  integer grid and returned *in floating point*, so the quantized model can
  be evaluated through the existing float inference path.
* :func:`quantize_array_int` — the raw integer lattice plus its scale, the
  form :mod:`repro.runtime`'s quantized kernels execute directly (int8/int16
  weights, integer accumulation).

:func:`quantize_model` fake-quantizes a model in place but snapshots every
original parameter first: :meth:`QuantizationReport.restore` rolls the model
back bit-identically, which is what lets a failed accuracy-delta gate at
publish time (``ModelRegistry.save_quantized``) abandon the quantization
without corrupting the caller's trained weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.nn.module import Module


@dataclass(frozen=True)
class QuantizationConfig:
    """Symmetric per-tensor quantization settings.

    Attributes
    ----------
    weight_bits:
        Integer precision for weights (the accelerator model assumes 8).
    clip_percentile:
        Percentile of ``|w|`` used as the clipping range (100 = max-abs).
        Clipping slightly below the maximum trades a little saturation error
        for a finer step size on the bulk of the distribution.  When the
        chosen percentile of a *sparse* tensor lands on 0 (more than
        ``clip_percentile`` % of the weights are exactly zero), the range
        falls back to max-abs rather than collapsing the tensor.
    """

    weight_bits: int = 8
    clip_percentile: float = 100.0

    def __post_init__(self) -> None:
        if not 2 <= self.weight_bits <= 32:
            raise ValueError("weight_bits must lie in [2, 32]")
        if not 0.0 < self.clip_percentile <= 100.0:
            raise ValueError("clip_percentile must lie in (0, 100]")

    @property
    def levels(self) -> int:
        """Number of representable signed levels on each side of zero."""
        return 2 ** (self.weight_bits - 1) - 1

    def storage_dtype(self) -> np.dtype:
        """Smallest NumPy integer dtype that holds the signed lattice."""
        if self.weight_bits <= 8:
            return np.dtype(np.int8)
        if self.weight_bits <= 16:
            return np.dtype(np.int16)
        return np.dtype(np.int32)


def _clip_magnitude(values: np.ndarray, config: QuantizationConfig) -> float:
    """Clipping range ``|w| <= magnitude`` for one tensor.

    Uses the configured percentile of ``|w|``, falling back to max-abs
    whenever the percentile lands on exactly 0 — which happens for any
    tensor whose zero fraction exceeds ``clip_percentile`` (e.g. pruned or
    extremely sparse weights).  Without the fallback such a tensor would
    quantize to all-zeros with a 0.0 scale, silently deleting every
    surviving weight.
    """
    if values.size == 0:
        return 0.0
    magnitudes = np.abs(values)
    magnitude = float(np.percentile(magnitudes, config.clip_percentile))
    if magnitude == 0.0:
        magnitude = float(magnitudes.max())
    return magnitude


def quantize_array(values: np.ndarray, config: QuantizationConfig) -> Tuple[np.ndarray, float]:
    """Quantize one array; returns the dequantized array and the scale used.

    The scale is strictly positive for any tensor with at least one nonzero
    element (sparse tensors fall back to max-abs clipping, see
    :class:`QuantizationConfig`); it is 0.0 only for an all-zero tensor,
    which round-trips to all-zeros unchanged.
    """
    magnitude = _clip_magnitude(values, config)
    if magnitude == 0.0:
        return np.zeros_like(values), 0.0
    scale = magnitude / config.levels
    quantized = np.clip(np.round(values / scale), -config.levels, config.levels)
    return (quantized * scale).astype(values.dtype), float(scale)


def quantize_array_int(values: np.ndarray, config: QuantizationConfig) -> Tuple[np.ndarray, float]:
    """Quantize one array onto its signed integer lattice.

    Returns ``(q, scale)`` with ``q`` in the smallest integer dtype that
    holds ``weight_bits`` (int8 for <=8, int16 for <=16) and
    ``q * scale ~= values``.  Unlike :func:`quantize_array`, the scale is
    *never* 0.0 — an all-zero tensor returns an all-zero lattice with scale
    1.0 — so downstream integer kernels can divide by it unconditionally.
    """
    magnitude = _clip_magnitude(values, config)
    dtype = config.storage_dtype()
    if magnitude == 0.0:
        return np.zeros(values.shape, dtype=dtype), 1.0
    scale = magnitude / config.levels
    quantized = np.clip(np.round(values / scale), -config.levels, config.levels)
    return quantized.astype(dtype), float(scale)


@dataclass
class QuantizationReport:
    """Outcome of quantizing a model's weights.

    Attributes
    ----------
    scales:
        Per-parameter quantization scales.
    mean_squared_error:
        MSE between original and quantized weights, averaged over parameters.
    max_abs_error:
        Largest absolute weight perturbation introduced.
    weight_bits:
        Precision used.
    originals:
        Bit-exact copies of every parameter as it was *before* quantization
        (captured by :func:`quantize_model`); ``None`` on reports built by
        hand.  Consumed by :meth:`restore`.
    """

    scales: Dict[str, float]
    mean_squared_error: float
    max_abs_error: float
    weight_bits: int
    originals: Optional[Dict[str, np.ndarray]] = field(default=None, repr=False)

    def restore(self, model: Module) -> None:
        """Write the snapshotted original weights back into ``model``.

        Rolls back the in-place mutation of :func:`quantize_model`
        bit-identically, so a failed accuracy-delta check can abandon a
        quantization attempt without losing the trained weights.  Raises
        ``ValueError`` when the report carries no snapshot or the model's
        parameter set no longer matches it.
        """
        if self.originals is None:
            raise ValueError("this QuantizationReport carries no original-weight snapshot")
        params = dict(model.named_parameters())
        if set(params) != set(self.originals):
            raise ValueError(
                "cannot restore: model parameters do not match the snapshot "
                f"(missing={sorted(set(self.originals) - set(params))}, "
                f"unexpected={sorted(set(params) - set(self.originals))})"
            )
        for name, param in params.items():
            param.data[...] = self.originals[name]


def quantize_model(model: Module, config: QuantizationConfig = QuantizationConfig()) -> QuantizationReport:
    """Quantize every parameter of ``model`` in place (fake-quantization).

    Weights are rounded to the integer grid and written back in floating
    point (the standard deploy-time "fake quantization"), so the quantized
    model can be evaluated with the existing inference path while behaving
    exactly like the integer weights the accelerator would store.

    Every original parameter is snapshotted on the returned report before
    being overwritten: :meth:`QuantizationReport.restore` undoes the
    quantization bit-identically, which the publish-time accuracy gate
    (``ModelRegistry.save_quantized``) relies on to roll back a quantization
    whose accuracy cost exceeds its budget.
    """
    scales: Dict[str, float] = {}
    originals: Dict[str, np.ndarray] = {}
    total_sq_error = 0.0
    total_count = 0
    max_abs_error = 0.0
    for name, param in model.named_parameters():
        original = param.data.copy()
        originals[name] = original
        quantized, scale = quantize_array(param.data, config)
        param.data[...] = quantized
        scales[name] = scale
        error = quantized - original
        total_sq_error += float((error ** 2).sum())
        total_count += error.size
        if error.size:
            max_abs_error = max(max_abs_error, float(np.abs(error).max()))
    mse = total_sq_error / total_count if total_count else 0.0
    return QuantizationReport(
        scales=scales,
        mean_squared_error=mse,
        max_abs_error=max_abs_error,
        weight_bits=config.weight_bits,
        originals=originals,
    )
