"""Behavioural model of the paper's FPGA-based SNN accelerator.

The paper maps trained models onto an in-house SystemVerilog accelerator
implemented on a Xilinx Kintex UltraScale+ FPGA.  The accelerator is
sparsity-aware (compute scales with spike events, not dense MACs), allocates
processing elements per layer according to the layer's workload
("model-to-hardware mapping"), and runs the layers in a lock-step pipeline.

This package reproduces that platform as an analytical model:

* :mod:`repro.hardware.workload` — per-layer workload descriptors extracted
  from a trained model plus its measured firing rates.
* :mod:`repro.hardware.mapping` — workload-proportional PE allocation.
* :mod:`repro.hardware.latency` — cycle model for the lock-step pipeline.
* :mod:`repro.hardware.resources` — LUT/FF/DSP/BRAM utilisation estimates.
* :mod:`repro.hardware.power` — static + activity-dependent dynamic power.
* :mod:`repro.hardware.accelerator` — the sparsity-aware accelerator
  (:class:`SparsityAwareAccelerator`) and the sparsity-oblivious dense
  baseline (:class:`DenseBaselineAccelerator`).
* :mod:`repro.hardware.prior_work` — model of the comparison accelerator of
  Ye et al. (TCAD 2022), the paper's reference [6].
* :mod:`repro.hardware.efficiency` — the FPS/W report the paper's figures use.

Absolute numbers are calibrated to the Kintex UltraScale+ class of device;
what matters for the reproduction is that latency, power and FPS/W respond
to firing rates and layer shapes exactly the way the paper's platform does.

The model's predictions can be checked against *measured* serving numbers:
:mod:`repro.serve` records achieved fps and latency percentiles for live
inference traffic together with the traffic's measured spike activity, and
:func:`repro.hardware.report.format_measured_vs_modeled` renders that
measurement next to the accelerator's prediction for the same workload —
the modeled row is the FPGA, the measured row is the serving host, and the
ratio is the hardware-efficiency gap the paper quantifies.
"""

from repro.hardware.workload import LayerWorkload, NetworkWorkload, workload_from_layer_specs
from repro.hardware.mapping import MappingConfig, allocate_processing_elements
from repro.hardware.resources import FPGAResources, ResourceUsage, estimate_resources, KINTEX_ULTRASCALE_PLUS
from repro.hardware.power import PowerModel, PowerBreakdown
from repro.hardware.latency import LatencyModel, LatencyBreakdown
from repro.hardware.accelerator import AcceleratorConfig, SparsityAwareAccelerator, DenseBaselineAccelerator
from repro.hardware.prior_work import PriorWorkAccelerator, PRIOR_WORK_REFERENCE
from repro.hardware.efficiency import HardwareReport, evaluate_on_hardware
from repro.hardware.report import format_report, format_comparison, format_measured_vs_modeled
from repro.hardware.quantization import QuantizationConfig, QuantizationReport, quantize_array, quantize_model

__all__ = [
    "LayerWorkload",
    "NetworkWorkload",
    "workload_from_layer_specs",
    "MappingConfig",
    "allocate_processing_elements",
    "FPGAResources",
    "ResourceUsage",
    "estimate_resources",
    "KINTEX_ULTRASCALE_PLUS",
    "PowerModel",
    "PowerBreakdown",
    "LatencyModel",
    "LatencyBreakdown",
    "AcceleratorConfig",
    "SparsityAwareAccelerator",
    "DenseBaselineAccelerator",
    "PriorWorkAccelerator",
    "PRIOR_WORK_REFERENCE",
    "HardwareReport",
    "evaluate_on_hardware",
    "format_report",
    "format_comparison",
    "format_measured_vs_modeled",
    "QuantizationConfig",
    "QuantizationReport",
    "quantize_array",
    "quantize_model",
]
