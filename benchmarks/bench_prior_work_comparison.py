"""Benchmark E3 — prior-work comparison (Sec. III-B in-text table).

Reproduces the paper's comparison against Ye et al. [6]: the fine-tuned
model (fast sigmoid, ``beta = 0.7``, ``theta = 1.5``) on the sparsity-aware
platform versus the default-hyperparameter model on the prior-work (dense,
time-multiplexed) accelerator.  The paper reports a **1.72x** FPS/W gain
with no accuracy degradation.
"""

from __future__ import annotations

from repro.core.comparison import format_comparison_table, run_prior_work_comparison

from .conftest import run_once


def test_prior_work_efficiency_comparison(benchmark, repro_scale, results_store):
    def run():
        return run_prior_work_comparison(scale_preset=repro_scale.name)

    comparison = run_once(benchmark, run)

    print()
    print(f"[prior-work comparison] repro scale: {repro_scale.name}")
    print(format_comparison_table(comparison))

    results_store.add(
        "prior_work_comparison",
        f"scale={repro_scale.name}",
        {
            "efficiency_gain_vs_prior": comparison.efficiency_gain,
            "efficiency_gain_from_tuning": comparison.efficiency_gain_from_tuning,
            "tuned_accuracy": comparison.tuned.accuracy,
            "default_accuracy": comparison.default.accuracy,
            "accuracy_delta": comparison.accuracy_delta,
            "tuned_fps_per_watt": comparison.tuned.hardware.fps_per_watt,
            "prior_fps_per_watt": comparison.prior_hardware.fps_per_watt,
        },
    )

    # Shape check: the tuned model on the sparsity-aware platform must beat
    # the prior dense accelerator by a clear margin (paper: 1.72x).
    assert comparison.efficiency_gain > 1.0
