"""Shared configuration for the benchmark harness.

Every experiment benchmark (Figure 1, Figure 2, prior-work comparison,
ablations) runs at the ``bench`` reproduction scale by default; set
``REPRO_SCALE=full`` or ``REPRO_SCALE=paper`` to run closer to the published
configuration (slower).  Each benchmark prints the reproduced figure/table to
stdout (run pytest with ``-s`` to see it) and appends its headline numbers to
``benchmarks/results/measured.json`` so EXPERIMENTS.md can be refreshed from
actual runs.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.config import resolve_scale

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def repro_scale():
    """The reproduction scale preset used by every experiment benchmark."""
    return resolve_scale(os.environ.get("REPRO_SCALE"))


@pytest.fixture(scope="session")
def bench_smoke() -> bool:
    """Whether benchmarks should run in fast smoke mode (the default).

    Smoke mode shrinks problem sizes and repetition counts so the whole
    benchmark suite stays interactive under plain pytest (the runtime
    speedup benchmark finishes in seconds); set ``REPRO_BENCH_FULL=1`` for
    full-size statistical runs.
    """
    return os.environ.get("REPRO_BENCH_FULL", "0") != "1"


def update_bench_json(filename: str, section: str, payload: dict) -> None:
    """Merge one scenario's metrics into ``benchmarks/results/<filename>``.

    Each ``BENCH_*.json`` document is a flat mapping of section name to
    payload dict; re-running a single scenario overwrites only its own
    section so partial runs never clobber the rest of the document.  A
    corrupt or non-dict file is replaced rather than crashing the bench.
    """
    import json

    from repro.analysis.io import save_json

    path = RESULTS_DIR / filename
    doc = {}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, dict):
                doc = loaded
        except (OSError, ValueError):
            doc = {}
    doc[section] = payload
    save_json(doc, path)


@pytest.fixture(scope="session")
def results_store():
    """Session-wide JSON store for measured headline numbers."""
    from repro.core.results import ResultStore

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return ResultStore(RESULTS_DIR / "measured.json")


def run_once(benchmark, fn):
    """Run an expensive experiment exactly once under pytest-benchmark timing.

    The experiment benchmarks train multiple networks; repeating them for
    statistical timing would multiply the runtime for no benefit, so each is
    executed a single time and the wall-clock time is what pytest-benchmark
    reports.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
