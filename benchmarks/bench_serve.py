"""Benchmark — serving layer: micro-batched vs serial, open-loop, overload.

Load-tests :mod:`repro.serve` end to end on freshly trained models:

1. **Serial baseline** — closed loop, one client, ``max_batch=1``: every
   request is encoded, dispatched and served alone.  This is the
   no-batching throughput floor.
2. **Micro-batched burst** — the same requests submitted concurrently and
   coalesced into ``max_batch`` chunks.  Includes the correctness gate:
   served spike counts must be bit-identical to
   :func:`repro.runtime.evaluate_with_runtime` over the same batches.
   The acceptance bar (full mode): **>= 3x** the serial baseline.
3. **Open loop** — Poisson arrivals at ~60% of the measured micro-batched
   capacity, the realistic regime where latency percentiles mean something:
   requests wait at most ``max_wait_ms`` for company, so p50/p99 reflect
   batching delay + service time rather than queue explosion.
4. **Gateway overload** (``test_serve_gateway_overload``) — two registered
   models behind one :class:`~repro.serve.ServeGateway` with shed-mode
   admission control, driven open-loop at **>= 2x** measured capacity.
   The queue-depth high-water mark must stay at or under ``max_queue``
   and (full mode) the admitted-request p99 must stay bounded by the
   worst-case drain time of one full queue — overload sheds load, it does
   not melt latency for the requests that were accepted.
5. **Fault storm** (``test_serve_fault_storm``) — closed-loop traffic
   against a gateway with a deterministic :class:`~repro.serve.FaultInjector`
   schedule (a breaker-tripping run of kernel faults, a worker death, a
   slow batch) plus a torn republish mid-run.  Acceptance: every
   non-faulted request is served bit-identically, the circuit breaker
   opens and re-closes, the worker pool recovers, the torn republish
   degrades (not crashes) and the next good publish is picked up, and
   served-request p99 stays bounded.
6. **Observability overhead** (``test_serve_observability``) — the same
   pre-queued burst served with request tracing off and on
   (``repro.obs``), bit-identity asserted between the legs.  Acceptance
   (full mode): traced p95 latency within **5%** of untraced.
7. **Autoscale replay** (``test_serve_autoscale``) — a bursty
   burst/lull/burst/lull traffic replay (bursts at ``OVERLOAD_FACTOR``
   of baseline capacity, 50% of traffic high-priority with a deadline
   budget) played identically against a fixed-capacity gateway and one
   running the closed-loop autoscaler.  Acceptance (full mode): the
   autoscaled gateway sheds strictly fewer high-priority requests and
   keeps admitted p99 within the SLO bound, with scale events recorded
   in telemetry.

Every leg reports through :class:`repro.serve.ServeTelemetry`; the
measured achieved fps is recorded next to the accelerator model's
prediction for the *same measured spike traffic* (see
``format_measured_vs_modeled``).  Results go to
``benchmarks/results/measured.json`` (headline) and
``benchmarks/results/BENCH_serve.json`` (one section per scenario —
``microbatch``, ``gateway_overload``, ``faults``, ``observability`` and
``autoscale``; see ``docs/BENCHMARKS.md``).
"""

from __future__ import annotations

import time

import numpy as np

from .conftest import run_once, update_bench_json
from repro.core.config import ExperimentConfig, SCALE_PRESETS
from repro.core.experiment import make_dataset
from repro.hardware.report import format_measured_vs_modeled
from repro.runtime import compile_network
from repro.serve import (
    AutoscalePolicy,
    BreakerPolicy,
    FaultInjector,
    InferenceServer,
    InjectedFault,
    ModelRegistry,
    ModelUnavailable,
    RequestTimedOut,
    ServeGateway,
    ServerOverloaded,
    format_gateway_summary,
    format_telemetry,
    tear_checkpoint,
    train_and_register,
)

#: Micro-batch size for the batched legs (the serial leg always uses 1).
MAX_BATCH = 32

#: Open-loop arrival rate as a fraction of measured micro-batched capacity.
OPEN_LOOP_LOAD = 0.6

#: Admission-control queue cap for the gateway overload scenario.
GATEWAY_MAX_QUEUE = 16

#: Overload arrival rate as a multiple of measured gateway capacity (>= 2x).
OVERLOAD_FACTOR = 2.2

#: Queue cap for the autoscale replay (small, so overload bites quickly).
AUTOSCALE_MAX_QUEUE = 8

#: Lull arrival rate as a fraction of baseline capacity (the diurnal trough).
LULL_LOAD = 0.3

#: Latency budget attached to high-priority requests in the replay (ms).
HIGH_PRIORITY_DEADLINE_MS = 250.0


def _update_bench_json(section: str, payload: dict) -> None:
    """Merge one scenario's metrics into ``BENCH_serve.json`` (keyed by section)."""
    update_bench_json("BENCH_serve.json", section, payload)


def _collect_images(config: ExperimentConfig, count: int):
    _, test_loader = make_dataset(config)
    images = []
    while len(images) < count:
        for batch_images, _ in test_loader:
            images.extend(list(batch_images))
            if len(images) >= count:
                break
    return images[:count]


def _run_serial(entry, images) -> float:
    """Closed-loop single client, batch size forced to 1; returns seconds."""
    with InferenceServer(entry.model, entry.encoder, max_batch=1, max_wait_ms=0.0) as server:
        start = time.perf_counter()
        for image in images:
            server.submit(image).result(timeout=120)
        return time.perf_counter() - start


def _run_burst(entry, images, workers: int):
    """All requests pre-queued, drained in deterministic max_batch chunks.

    Returns ``(seconds, served_counts, server)`` — counts in submission
    order for the correctness gate.
    """
    server = InferenceServer(
        entry.model, entry.encoder, max_batch=MAX_BATCH, max_wait_ms=50.0, workers=workers
    )
    # The timer starts BEFORE submission: submit() encodes synchronously,
    # and the serial baseline pays that same per-request encoding cost
    # inside its timed loop, so the measured speedup is batching alone.
    start = time.perf_counter()
    futures = server.submit_many(images)
    server.start()
    results = [future.result(timeout=300) for future in futures]
    seconds = time.perf_counter() - start
    server.stop()
    return seconds, np.stack([result.counts for result in results]), server


def _run_open_loop(entry, images, rate_fps: float):
    """Poisson arrivals at ``rate_fps``; returns the server (for telemetry)."""
    rng = np.random.default_rng(42)
    server = InferenceServer(
        entry.model, entry.encoder, max_batch=MAX_BATCH, max_wait_ms=5.0, workers=1
    )
    server.start()
    futures = []
    next_arrival = time.perf_counter()
    for image in images:
        next_arrival += rng.exponential(1.0 / rate_fps)
        delay = next_arrival - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        futures.append(server.submit(image))
    for future in futures:
        future.result(timeout=300)
    server.stop()
    return server


def _reference_counts(entry, images):
    """evaluate_with_runtime-equivalent counts over the same FIFO chunks.

    Mirrors the scheduler exactly — a faithfully rebuilt encoder (fresh
    stream, same kwargs) applied per request in submission order, requests
    concatenated into ``MAX_BATCH`` chunks — so the gate holds for
    stochastic encoders too, not just the deterministic ones.
    """
    from repro.training.checkpoint import build_encoder, encoder_spec

    plan = compile_network(entry.model)
    reference_encoder = build_encoder(encoder_spec(entry.encoder))
    encoded = [reference_encoder(image[None]) for image in images]
    chunks = []
    for start in range(0, len(images), MAX_BATCH):
        spikes = np.concatenate(encoded[start : start + MAX_BATCH], axis=1)
        chunks.append(plan.run(spikes, record_activity=False).counts)
    return np.concatenate(chunks)


def test_serve_microbatch_throughput(benchmark, bench_smoke, repro_scale, results_store, tmp_path):
    if bench_smoke:
        scale = SCALE_PRESETS["smoke"]
        num_requests, workers = 64, 1
    else:
        scale = repro_scale
        num_requests, workers = 256, 2
    config = ExperimentConfig(scale=scale)

    registry = ModelRegistry(tmp_path / "registry")
    train_and_register(registry, "bench-model", config)
    # Each leg serves a freshly loaded checkpoint round-trip, so every
    # encoder starts from the beginning of its stream (a shared entry would
    # hand later legs a mid-stream stochastic encoder).
    entry = registry.load("bench-model")
    images = _collect_images(config, num_requests)

    def run():
        serial_s = _run_serial(registry.load("bench-model"), images)
        burst_s, served_counts, burst_server = _run_burst(registry.load("bench-model"), images, workers)
        burst_fps = num_requests / burst_s
        open_server = _run_open_loop(
            registry.load("bench-model"), images, rate_fps=burst_fps * OPEN_LOOP_LOAD
        )
        return serial_s, burst_s, served_counts, burst_server, open_server

    serial_s, burst_s, served_counts, burst_server, open_server = run_once(benchmark, run)

    # Correctness gate: micro-batched serving is bit-identical to the
    # offline runtime evaluation over the same batches.
    np.testing.assert_array_equal(served_counts, _reference_counts(entry, images))

    serial_fps = num_requests / serial_s
    burst_fps = num_requests / burst_s
    speedup = burst_fps / serial_fps

    burst_summary = burst_server.telemetry.summary()
    open_summary = open_server.telemetry.summary()
    comparison = open_server.telemetry.hardware_comparison(
        entry.model.layer_specs(), modeled=entry.modeled_hardware()
    )

    mode = "smoke" if bench_smoke else "full"
    print()
    print(
        f"[serve] {num_requests} requests at scale={scale.name}, "
        f"max_batch={MAX_BATCH}, workers={workers}, mode={mode}"
    )
    print(f"  serial (batch=1)   {serial_s:>8.2f}s   {serial_fps:>8.1f} req/s")
    print(f"  micro-batched      {burst_s:>8.2f}s   {burst_fps:>8.1f} req/s   ({speedup:.2f}x)")
    print(
        f"  open loop @{OPEN_LOOP_LOAD:.0%}     p50 {open_summary['p50_ms']:.2f} ms   "
        f"p99 {open_summary['p99_ms']:.2f} ms   mean batch {open_summary['mean_batch_size']:.1f}"
    )
    print(format_telemetry(open_summary, title="Open-loop telemetry"))
    print(format_measured_vs_modeled(comparison))

    metrics = {
        "requests": num_requests,
        "max_batch": MAX_BATCH,
        "workers": workers,
        "serial_seconds": serial_s,
        "serial_fps": serial_fps,
        "microbatch_seconds": burst_s,
        "microbatch_fps": burst_fps,
        "microbatch_speedup": speedup,
        "microbatch_p50_ms": burst_summary["p50_ms"],
        "microbatch_p99_ms": burst_summary["p99_ms"],
        "open_loop_load": OPEN_LOOP_LOAD,
        "open_loop_p50_ms": open_summary["p50_ms"],
        "open_loop_p95_ms": open_summary["p95_ms"],
        "open_loop_p99_ms": open_summary["p99_ms"],
        "open_loop_mean_batch": open_summary["mean_batch_size"],
        "measured_fps": comparison["measured_fps"],
        "modeled_fps": comparison["modeled_fps"],
        "measured_over_modeled": comparison["fps_ratio"],
        "modeled_latency_ms": comparison["modeled_latency_ms"],
    }
    results_store.add("serve", f"scale={scale.name}_{mode}", metrics)
    _update_bench_json(
        "microbatch", {"experiment": "serve", "mode": mode, "scale": scale.name, **metrics}
    )

    # Micro-batching must always win; the hard 3x acceptance bar is quoted
    # at bench scale (full mode), where per-request overhead does not hide
    # behind model compute noise on a loaded CI box.
    assert speedup > 1.0, f"micro-batching should beat serial, got {speedup:.2f}x"
    if not bench_smoke:
        assert speedup >= 3.0, f"expected >=3x micro-batched throughput, got {speedup:.2f}x"


def test_serve_gateway_overload(benchmark, bench_smoke, repro_scale, results_store, tmp_path):
    """Two-model gateway under open-loop overload with shed admission control.

    Capacity is measured first with a closed-loop burst alternating between
    both models; the overload leg then drives Poisson arrivals at
    ``OVERLOAD_FACTOR`` (>= 2x) of that capacity against a gateway whose
    per-model queues are capped at ``GATEWAY_MAX_QUEUE``.  Surplus arrivals
    shed with :class:`ServerOverloaded`; the acceptance criteria are that
    the queue-depth high-water mark never exceeds the cap and (full mode)
    that the admitted-request p99 stays under three worst-case drain times
    of one full queue — i.e. overload degrades *availability* (sheds), not
    the latency of admitted traffic.
    """
    if bench_smoke:
        scale = SCALE_PRESETS["smoke"]
        burst, arrivals = 32, 120
    else:
        scale = repro_scale
        burst, arrivals = 128, 480
    config_a = ExperimentConfig(scale=scale, label="gateway-a")
    config_b = ExperimentConfig(scale=scale, beta=0.5, threshold=1.5, label="gateway-b")

    registry = ModelRegistry(tmp_path / "registry")
    train_and_register(registry, "model-a", config_a)
    train_and_register(registry, "model-b", config_b)
    images = _collect_images(config_a, max(burst, 64))
    names = ("model-a", "model-b")

    def run():
        # Closed-loop capacity: saturate both per-model servers at once.
        with ServeGateway(registry, max_batch=MAX_BATCH, max_wait_ms=5.0) as warm:
            start = time.perf_counter()
            futures = [
                warm.submit(names[i % 2], images[i % len(images)]) for i in range(burst)
            ]
            for future in futures:
                future.result(timeout=300)
            capacity_fps = burst / (time.perf_counter() - start)

        # Open-loop overload: Poisson arrivals beyond capacity, queue capped.
        gateway = ServeGateway(
            registry,
            max_batch=MAX_BATCH,
            max_wait_ms=5.0,
            max_queue=GATEWAY_MAX_QUEUE,
            overload="shed",
        )
        rng = np.random.default_rng(7)
        rate = capacity_fps * OVERLOAD_FACTOR
        admitted = []
        next_arrival = time.perf_counter()
        for i in range(arrivals):
            next_arrival += rng.exponential(1.0 / rate)
            delay = next_arrival - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            try:
                admitted.append(gateway.submit(names[i % 2], images[i % len(images)]))
            except ServerOverloaded:
                pass  # counted by the per-model telemetry
        for future in admitted:
            future.result(timeout=300)
        summary = gateway.summary()
        gateway.stop()
        return capacity_fps, len(admitted), summary

    capacity_fps, admitted_count, summary = run_once(benchmark, run)
    totals = summary["totals"]
    shed_count = int(totals["shed"])
    high_water = int(totals["queue_high_water"])
    p99_by_model = {
        name: per_model["p99_ms"] for name, per_model in summary["models"].items()
    }
    worst_p99_ms = max(p99_by_model.values())
    # Worst case for an admitted request: a full per-model queue ahead of it,
    # drained at that model's share of measured capacity, with 3x slack for
    # scheduling noise on a loaded box.
    p99_bound_ms = 3000.0 * (GATEWAY_MAX_QUEUE + MAX_BATCH) / (capacity_fps / len(names))

    mode = "smoke" if bench_smoke else "full"
    print()
    print(
        f"[gateway] {arrivals} arrivals at {OVERLOAD_FACTOR:.1f}x capacity "
        f"({capacity_fps:.1f} req/s), max_queue={GATEWAY_MAX_QUEUE}, mode={mode}"
    )
    print(
        f"  admitted {admitted_count}   shed {shed_count}   "
        f"queue high-water {high_water}   p99 {worst_p99_ms:.1f} ms (bound {p99_bound_ms:.1f} ms)"
    )
    print(format_gateway_summary(summary))

    metrics = {
        "arrivals": arrivals,
        "overload_factor": OVERLOAD_FACTOR,
        "capacity_fps": capacity_fps,
        "max_queue": GATEWAY_MAX_QUEUE,
        "admitted": admitted_count,
        "shed": shed_count,
        "queue_high_water": high_water,
        "admitted_p99_ms": worst_p99_ms,
        "admitted_p99_bound_ms": p99_bound_ms,
        "per_model": summary["models"],
    }
    results_store.add("serve_gateway", f"scale={scale.name}_{mode}", metrics)
    _update_bench_json(
        "gateway_overload",
        {"experiment": "serve_gateway", "mode": mode, "scale": scale.name, **metrics},
    )

    # The cap is the contract: open-loop overload must never grow a queue
    # past it, in either mode.
    assert high_water <= GATEWAY_MAX_QUEUE, (
        f"queue depth {high_water} exceeded the configured cap {GATEWAY_MAX_QUEUE}"
    )
    assert admitted_count + shed_count == arrivals
    assert totals["admitted"] == admitted_count
    if not bench_smoke:
        assert shed_count > 0, "2x overload should shed at this queue cap"
        assert worst_p99_ms <= p99_bound_ms, (
            f"admitted p99 {worst_p99_ms:.1f} ms blew the bound {p99_bound_ms:.1f} ms"
        )


#: Deterministic storm schedule, keyed by batch index (batch == request in
#: this leg: the storm drives the gateway closed-loop at ``max_batch=1``).
STORM_KERNEL_FAULTS = frozenset({3, 4, 5})  # consecutive -> trips the breaker
STORM_WORKER_DEATH = frozenset({8})
STORM_SLOW_BATCHES = frozenset({12})
STORM_SLOW_MS = 5.0

#: Breaker policy for the storm: trips on the third consecutive failure,
#: probes after a short deterministic backoff (jitter off for replayability).
STORM_BREAKER = BreakerPolicy(
    failure_threshold=3, backoff_initial_s=0.05, backoff_max_s=0.5, jitter=0.0
)


def test_serve_fault_storm(benchmark, bench_smoke, repro_scale, results_store, tmp_path):
    """Availability under injected faults: the storm serves everything it can.

    A deterministic :class:`FaultInjector` schedule drives one gateway
    through a breaker-tripping run of kernel faults, a worker death and a
    slow batch, while a torn republish lands mid-run followed by a good
    one.  Acceptance: every non-faulted request is served **bit-identically**
    to the offline reference, the breaker opens and re-closes (rejections
    are fail-fast, not hangs), the worker pool recovers, the torn republish
    degrades to the old weights, and served-request p99 stays bounded by
    the clean closed-loop service time.
    """
    if bench_smoke:
        scale = SCALE_PRESETS["smoke"]
        arrivals = 48
    else:
        scale = repro_scale
        arrivals = 96
    config = ExperimentConfig(scale=scale, label="fault-storm")

    registry = ModelRegistry(tmp_path / "registry")
    train_and_register(registry, "storm", config)
    entry = registry.load("storm")
    images = _collect_images(config, arrivals)
    tear_at = arrivals // 2

    # Per-request offline reference (batch size 1 throughout the storm).
    from repro.training.checkpoint import build_encoder, encoder_spec

    plan = compile_network(entry.model)
    reference_encoder = build_encoder(encoder_spec(entry.encoder))
    reference = [
        plan.run(reference_encoder(image[None]), record_activity=False).counts[0]
        for image in images
    ]

    def run():
        # Clean closed-loop service time first: the storm's p99 bound.
        warm_n = min(32, arrivals)
        with ServeGateway(registry, max_batch=1, max_wait_ms=0.0) as warm:
            start = time.perf_counter()
            for future in [warm.submit("storm", images[i]) for i in range(warm_n)]:
                future.result(timeout=300)
            capacity_fps = warm_n / (time.perf_counter() - start)

        faults = FaultInjector(
            kernel_fault_batches=STORM_KERNEL_FAULTS,
            worker_death_batches=STORM_WORKER_DEATH,
            slow_batches=STORM_SLOW_BATCHES,
            slow_batch_ms=STORM_SLOW_MS,
        )
        gateway = ServeGateway(
            registry, max_batch=1, max_wait_ms=0.0, breaker=STORM_BREAKER, faults=faults
        )
        served = {}
        faulted = []
        rejections = 0
        degraded = recovered = False
        for i in range(arrivals):
            if i == tear_at:
                # Torn republish mid-storm, then a good one right after.
                tear_checkpoint(registry.checkpoint_path("storm"), seed=0)
                degraded = gateway.refresh("storm") is False
                registry.save("storm", entry.model, entry.encoder, config=config)
                recovered = gateway.refresh("storm") is True
            for _ in range(100):
                try:
                    served[i] = gateway.submit("storm", images[i]).result(timeout=300).counts
                    break
                except InjectedFault:
                    faulted.append(i)  # the injected failure is this request's outcome
                    break
                except ModelUnavailable:
                    rejections += 1  # fail-fast while open; wait out the backoff
                    time.sleep(STORM_BREAKER.backoff_initial_s * 1.5)
            else:
                raise AssertionError(f"request {i} never got through the breaker")
        telemetry = gateway.telemetry("storm")
        summary = gateway.summary()
        breaker_closes = telemetry.total_breaker_closes
        injected = faults.injected_counts
        gateway.stop()
        return (
            capacity_fps, served, faulted, rejections,
            degraded, recovered, summary, breaker_closes, injected,
        )

    (
        capacity_fps, served, faulted, rejections,
        degraded, recovered, summary, breaker_closes, injected,
    ) = run_once(benchmark, run)

    totals = summary["totals"]
    p99_ms = summary["models"]["storm"]["p99_ms"]
    # A non-faulted request is one service time; give 10x for scheduling
    # noise plus the injected slow-batch delay and the worker respawn.
    p99_bound_ms = 10_000.0 / capacity_fps + 10.0 * STORM_SLOW_MS

    mode = "smoke" if bench_smoke else "full"
    print()
    print(
        f"[faults] {arrivals} requests, {len(faulted)} faulted, "
        f"{rejections} breaker rejections, mode={mode}"
    )
    print(
        f"  worker deaths {totals['worker_deaths']:.0f}   "
        f"reload failures {totals['reload_failures']:.0f}   "
        f"breaker opens {totals['breaker_opens']:.0f} / closes {breaker_closes}   "
        f"p99 {p99_ms:.2f} ms (bound {p99_bound_ms:.2f} ms)"
    )
    print(format_gateway_summary(summary))

    payload = {
        "experiment": "serve_faults",
        "mode": mode,
        "scale": scale.name,
        "arrivals": arrivals,
        "capacity_fps": capacity_fps,
        "served": len(served),
        "faulted": sorted(faulted),
        "injected": injected,
        "breaker_rejections": rejections,
        "breaker_opens": totals["breaker_opens"],
        "breaker_closes": breaker_closes,
        "worker_deaths": totals["worker_deaths"],
        "reload_failures": totals["reload_failures"],
        "degraded_on_torn_republish": degraded,
        "recovered_on_good_republish": recovered,
        "p99_ms": p99_ms,
        "p99_bound_ms": p99_bound_ms,
    }
    results_store.add("serve_faults", f"scale={scale.name}_{mode}", payload)
    _update_bench_json("faults", payload)

    # Availability: exactly the injected kernel faults fail, nothing else.
    assert sorted(faulted) == sorted(STORM_KERNEL_FAULTS)
    assert len(served) == arrivals - len(faulted)
    # Correctness: everything served is bit-identical to the offline plan,
    # across the worker death, the breaker cycle and both republishes.
    for i, counts in served.items():
        np.testing.assert_array_equal(counts, reference[i])
    # The breaker cycled: open on the fault run, fail-fast while open,
    # re-closed on a successful half-open probe.
    assert totals["breaker_opens"] >= 1
    assert breaker_closes >= 1
    assert rejections >= 1
    assert totals["breaker_rejections"] == rejections
    # Supervision and degrade-on-corrupt both fired and recovered.
    assert totals["worker_deaths"] == 1
    assert totals["reload_failures"] == 1
    assert degraded and recovered
    assert totals["failed"] == len(faulted)
    if not bench_smoke:
        assert p99_ms <= p99_bound_ms, (
            f"storm p99 {p99_ms:.2f} ms blew the bound {p99_bound_ms:.2f} ms"
        )


#: Full-mode acceptance bar: traced p95 latency within 5% of untraced.
OBS_P95_OVERHEAD_BAR = 0.05


def test_serve_observability(benchmark, bench_smoke, repro_scale, results_store, tmp_path):
    """Request-tracing overhead: bit-identical output, near-free latency.

    The pre-queued deterministic burst from the micro-batch scenario is
    served twice — once with the default tracer disabled, once with it
    force-enabled — each leg on a freshly loaded checkpoint so encoder
    streams restart identically.  Served counts must match bit-for-bit
    between the legs (tracing records, it never computes), and the traced
    leg must actually produce spans.  In full mode each leg takes the best
    of three passes (pinning the comparison to the machine's floor rather
    than scheduler noise) and the p95 latency overhead must stay within
    ``OBS_P95_OVERHEAD_BAR``.
    """
    from repro.obs import default_tracer

    if bench_smoke:
        scale = SCALE_PRESETS["smoke"]
        num_requests, reps = 64, 1
    else:
        scale = repro_scale
        num_requests, reps = 256, 3
    config = ExperimentConfig(scale=scale, label="observability")

    registry = ModelRegistry(tmp_path / "registry")
    train_and_register(registry, "bench-model", config)
    images = _collect_images(config, num_requests)
    tracer = default_tracer()
    was_enabled = tracer.enabled

    def leg(enabled: bool):
        """One tracing mode: best-of-``reps`` burst passes; returns metrics."""
        tracer.reset()
        tracer.enable() if enabled else tracer.disable()
        best = None
        for _ in range(reps):
            seconds, counts, server = _run_burst(
                registry.load("bench-model"), images, workers=1
            )
            summary = server.telemetry.summary()
            if best is None or summary["p95_ms"] < best[0]["p95_ms"]:
                best = (summary, seconds, counts)
        return best

    def run():
        try:
            untraced = leg(False)
            traced = leg(True)
            spans = tracer.span_count
        finally:
            tracer.reset()
            tracer.enable() if was_enabled else tracer.disable()
        return untraced, traced, spans

    (untraced_summary, untraced_s, untraced_counts), (
        traced_summary,
        traced_s,
        traced_counts,
    ), span_count = run_once(benchmark, run)

    # Tracing must never change what is computed, only what is recorded.
    np.testing.assert_array_equal(traced_counts, untraced_counts)
    assert span_count > 0, "traced leg recorded no spans"

    p50_overhead = traced_summary["p50_ms"] / untraced_summary["p50_ms"] - 1.0
    p95_overhead = traced_summary["p95_ms"] / untraced_summary["p95_ms"] - 1.0
    throughput_overhead = traced_s / untraced_s - 1.0

    mode = "smoke" if bench_smoke else "full"
    print()
    print(
        f"[observability] {num_requests} requests x best-of-{reps}, "
        f"max_batch={MAX_BATCH}, mode={mode}"
    )
    print(
        f"  untraced   p50 {untraced_summary['p50_ms']:>8.2f} ms   "
        f"p95 {untraced_summary['p95_ms']:>8.2f} ms   {untraced_s:>6.2f}s"
    )
    print(
        f"  traced     p50 {traced_summary['p50_ms']:>8.2f} ms   "
        f"p95 {traced_summary['p95_ms']:>8.2f} ms   {traced_s:>6.2f}s   "
        f"({span_count} spans)"
    )
    print(
        f"  overhead   p50 {p50_overhead:+.1%}   p95 {p95_overhead:+.1%}   "
        f"wall {throughput_overhead:+.1%}"
    )

    payload = {
        "experiment": "serve_observability",
        "mode": mode,
        "scale": scale.name,
        "requests": num_requests,
        "repetitions": reps,
        "untraced_p50_ms": untraced_summary["p50_ms"],
        "untraced_p95_ms": untraced_summary["p95_ms"],
        "untraced_seconds": untraced_s,
        "traced_p50_ms": traced_summary["p50_ms"],
        "traced_p95_ms": traced_summary["p95_ms"],
        "traced_seconds": traced_s,
        "p50_overhead": p50_overhead,
        "p95_overhead": p95_overhead,
        "throughput_overhead": throughput_overhead,
        "span_count": span_count,
        "p95_overhead_bar": OBS_P95_OVERHEAD_BAR,
    }
    results_store.add("serve_observability", f"scale={scale.name}_{mode}", payload)
    _update_bench_json("observability", payload)

    if not bench_smoke:
        assert p95_overhead <= OBS_P95_OVERHEAD_BAR, (
            f"traced p95 overhead {p95_overhead:+.1%} exceeded the "
            f"{OBS_P95_OVERHEAD_BAR:.0%} bar"
        )


def _bursty_schedule(capacity_fps: float, phase_counts, rng):
    """Arrival schedule for the diurnal replay: ``[(delay_s, priority), ...]``.

    Alternates burst phases (Poisson at ``OVERLOAD_FACTOR`` of baseline
    capacity) and lull phases (``LULL_LOAD``); every second request rides
    the high-priority lane.  Generated once so the fixed and autoscaled
    runs replay byte-for-byte identical traffic.
    """
    schedule = []
    for phase, count in enumerate(phase_counts):
        rate = capacity_fps * (OVERLOAD_FACTOR if phase % 2 == 0 else LULL_LOAD)
        for i in range(count):
            schedule.append((rng.exponential(1.0 / rate), 1 if i % 2 == 0 else 0))
    return schedule


def _replay(gateway, name, images, schedule):
    """Play one arrival schedule against a gateway; returns outcome counts.

    High-priority arrivals carry a ``HIGH_PRIORITY_DEADLINE_MS`` budget,
    which is a *real* timeout: a request still queued past its deadline
    resolves to :class:`RequestTimedOut` instead of being dispatched late.
    Requests shed at submit (or evicted from the queue) are counted per
    lane; admitted futures are then drained to completion.
    """
    futures = []
    submit_shed = {0: 0, 1: 0}
    next_arrival = time.perf_counter()
    for i, (delay, priority) in enumerate(schedule):
        next_arrival += delay
        sleep_s = next_arrival - time.perf_counter()
        if sleep_s > 0:
            time.sleep(sleep_s)
        try:
            futures.append(
                gateway.submit(
                    name,
                    images[i % len(images)],
                    priority=priority,
                    deadline_ms=HIGH_PRIORITY_DEADLINE_MS if priority else None,
                )
            )
        except ServerOverloaded:
            submit_shed[priority] += 1
    served = 0
    evicted = 0
    timed_out = 0
    for future in futures:
        try:
            future.result(timeout=300)
            served += 1
        except ServerOverloaded:
            evicted += 1  # admitted then evicted by a higher-priority arrival
        except RequestTimedOut:
            timed_out += 1  # queued past its deadline budget
    return {
        "served": served,
        "evicted": evicted,
        "timed_out": timed_out,
        "submit_shed": submit_shed,
    }


def test_serve_autoscale(benchmark, bench_smoke, repro_scale, results_store, tmp_path):
    """Closed-loop autoscaler vs fixed capacity under a bursty replay.

    Baseline capacity is measured closed-loop at the autoscaler's minimum
    configuration; the same burst/lull schedule then runs against (a) a
    gateway pinned at that minimum and (b) a gateway running the control
    loop.  Full-mode acceptance: the autoscaled gateway sheds strictly
    fewer high-priority requests and keeps admitted p99 within the SLO
    bound; both modes require at least one recorded scale-up event.
    """
    if bench_smoke:
        scale = SCALE_PRESETS["smoke"]
        burst_measure, burst_s, lull_s = 32, 0.6, 0.25
    else:
        scale = repro_scale
        burst_measure, burst_s, lull_s = 128, 1.2, 0.5
    config = ExperimentConfig(scale=scale, label="autoscale")
    min_batch = 8

    registry = ModelRegistry(tmp_path / "registry")
    train_and_register(registry, "model", config)
    images = _collect_images(config, 64)

    def run():
        # Baseline capacity: closed-loop burst at the ladder's minimum.
        with ServeGateway(registry, max_batch=min_batch, max_wait_ms=5.0, workers=1) as warm:
            start = time.perf_counter()
            for future in [
                warm.submit("model", images[i % len(images)]) for i in range(burst_measure)
            ]:
                future.result(timeout=300)
            capacity_fps = burst_measure / (time.perf_counter() - start)

        # The policy's targets and the replay's phase lengths both scale
        # with measured capacity, so the scenario stresses a fast smoke
        # model and a slow full-scale model identically: "hot" means the
        # oldest request has queued longer than half a full queue's drain
        # time at baseline capacity, and each phase lasts a fixed wall-time
        # (many control-loop samples) rather than a fixed request count.
        policy = AutoscalePolicy(
            min_workers=1,
            max_workers=3,
            min_batch=min_batch,
            max_batch=MAX_BATCH,
            target_queue_age_ms=1000.0 * (AUTOSCALE_MAX_QUEUE / 2) / capacity_fps,
            scale_up_after=2,
            scale_down_after=8,
            cooldown_s=0.1,
        )
        burst_n = min(1500, max(30, int(capacity_fps * OVERLOAD_FACTOR * burst_s)))
        lull_n = min(300, max(8, int(capacity_fps * LULL_LOAD * lull_s)))
        phase_counts = (burst_n, lull_n, burst_n, lull_n)
        schedule = _bursty_schedule(capacity_fps, phase_counts, np.random.default_rng(13))

        # (a) fixed at the minimum configuration the autoscaler starts from.
        fixed = ServeGateway(
            registry,
            max_batch=min_batch,
            max_wait_ms=5.0,
            workers=1,
            max_queue=AUTOSCALE_MAX_QUEUE,
            overload="shed",
        )
        fixed_outcome = _replay(fixed, "model", images, schedule)
        fixed_summary = fixed.summary()
        fixed.stop()

        # (b) same replay with the control loop closing telemetry -> capacity.
        scaled = ServeGateway(
            registry,
            max_wait_ms=5.0,
            max_queue=AUTOSCALE_MAX_QUEUE,
            overload="shed",
            autoscale=policy,
        )
        scaled_outcome = _replay(scaled, "model", images, schedule)
        scaled_summary = scaled.summary()
        scale_events = scaled.scale_events("model")
        scaled.stop()
        return (
            capacity_fps,
            policy,
            phase_counts,
            fixed_outcome,
            fixed_summary,
            scaled_outcome,
            scaled_summary,
            scale_events,
        )

    (
        capacity_fps,
        policy,
        phase_counts,
        fixed_outcome,
        fixed_summary,
        scaled_outcome,
        scaled_summary,
        scale_events,
    ) = run_once(benchmark, run)

    def _lane_metrics(summary, outcome):
        per_model = summary["models"]["model"]
        return {
            "admitted": per_model["admitted"],
            "served": outcome["served"],
            "timed_out": outcome["timed_out"],
            "shed": per_model["shed"],
            "shed_high": per_model["shed_high"],
            "shed_low": per_model["shed_low"],
            "p99_ms": per_model["p99_ms"],
            "deadline_dispatches": per_model["deadline_dispatches"],
            "scale_ups": per_model["scale_ups"],
            "scale_downs": per_model["scale_downs"],
            "queue_high_water": per_model["queue_high_water"],
        }

    fixed_metrics = _lane_metrics(fixed_summary, fixed_outcome)
    scaled_metrics = _lane_metrics(scaled_summary, scaled_outcome)
    # SLO: worst case for an admitted request is a full queue plus one batch
    # ahead of it at *baseline* capacity, with 3x slack for a loaded box —
    # the autoscaled gateway must hold this even though the replay bursts at
    # OVERLOAD_FACTOR x capacity.
    slo_p99_ms = 3000.0 * (AUTOSCALE_MAX_QUEUE + MAX_BATCH) / capacity_fps

    mode = "smoke" if bench_smoke else "full"
    arrivals = sum(phase_counts)
    print()
    print(
        f"[autoscale] {arrivals} arrivals, bursts at {OVERLOAD_FACTOR:.1f}x of "
        f"{capacity_fps:.1f} req/s, max_queue={AUTOSCALE_MAX_QUEUE}, mode={mode}"
    )
    for label, metrics in (("fixed", fixed_metrics), ("autoscaled", scaled_metrics)):
        print(
            f"  {label:<11} served {metrics['served']:>4.0f}   "
            f"shed {metrics['shed']:>4.0f} (high {metrics['shed_high']:.0f})   "
            f"p99 {metrics['p99_ms']:>8.1f} ms   "
            f"scale {metrics['scale_ups']:.0f}up/{metrics['scale_downs']:.0f}down"
        )
    print(f"  SLO p99 bound {slo_p99_ms:.1f} ms; {len(scale_events)} scale events recorded")

    payload = {
        "experiment": "serve_autoscale",
        "mode": mode,
        "scale": scale.name,
        "arrivals": arrivals,
        "capacity_fps": capacity_fps,
        "overload_factor": OVERLOAD_FACTOR,
        "max_queue": AUTOSCALE_MAX_QUEUE,
        "slo_p99_ms": slo_p99_ms,
        "policy": {
            "min_workers": policy.min_workers,
            "max_workers": policy.max_workers,
            "min_batch": policy.min_batch,
            "max_batch": policy.max_batch,
            "target_queue_age_ms": policy.target_queue_age_ms,
        },
        "fixed": fixed_metrics,
        "autoscaled": scaled_metrics,
        "scale_events": scale_events,
    }
    results_store.add("serve_autoscale", f"scale={scale.name}_{mode}", payload)
    _update_bench_json("autoscale", payload)

    # Nothing admitted may be silently lost: every future resolves to a
    # result, a counted eviction or a counted deadline timeout, in both runs.
    for outcome, metrics in ((fixed_outcome, fixed_metrics), (scaled_outcome, scaled_metrics)):
        assert (
            outcome["served"]
            + outcome["evicted"]
            + outcome["timed_out"]
            + sum(outcome["submit_shed"].values())
        ) == arrivals
        assert metrics["shed"] == outcome["evicted"] + sum(outcome["submit_shed"].values())
    # The bursts must actually drive the ladder: scale-ups are required in
    # both modes (the replay overloads the minimum configuration 2.2x).
    assert scaled_metrics["scale_ups"] >= 1, "bursty replay never triggered a scale-up"
    assert scale_events and scale_events[0]["direction"] == "up"
    if not bench_smoke:
        assert scaled_metrics["shed_high"] < fixed_metrics["shed_high"], (
            f"autoscaled gateway must shed strictly fewer high-priority requests "
            f"({scaled_metrics['shed_high']:.0f} vs {fixed_metrics['shed_high']:.0f})"
        )
        assert scaled_metrics["p99_ms"] <= slo_p99_ms, (
            f"autoscaled admitted p99 {scaled_metrics['p99_ms']:.1f} ms blew the "
            f"SLO bound {slo_p99_ms:.1f} ms"
        )
