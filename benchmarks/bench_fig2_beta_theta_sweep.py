"""Benchmark E2 — Figure 2: beta x theta cross-sweep.

Reproduces the paper's Figure 2: with the fast-sigmoid surrogate fixed at
slope 0.25, cross-sweep the membrane leak ``beta`` and the firing threshold
``theta`` and report accuracy and hardware latency over the grid.  The paper
selects ``beta = 0.5, theta = 1.5`` as the balance point: 48% lower inference
latency for a 2.88% accuracy loss versus the best-accuracy configuration.
"""

from __future__ import annotations

from repro.core.beta_theta_sweep import format_figure2, run_beta_theta_sweep
from repro.core.config import ExperimentConfig

from .conftest import run_once

#: Grid used at bench scale (covers every (beta, theta) point the paper
#: names explicitly: the 0.25/1.0 default, the 0.5/1.5 optimum and the
#: 0.7/1.5 comparison point).
BENCH_BETAS = (0.25, 0.5, 0.7)
BENCH_THETAS = (1.0, 1.5, 2.5)

#: Accuracy budget used by the paper when selecting the trade-off point.
PAPER_ACCURACY_BUDGET = 0.05


def test_figure2_beta_theta_cross_sweep(benchmark, repro_scale, results_store):
    base_config = ExperimentConfig(
        surrogate="fast_sigmoid", surrogate_scale=0.25, scale=repro_scale
    )

    def run():
        return run_beta_theta_sweep(betas=BENCH_BETAS, thetas=BENCH_THETAS, base_config=base_config)

    result = run_once(benchmark, run)

    print()
    print(f"[figure2] repro scale: {repro_scale.name}")
    print(format_figure2(result, max_accuracy_loss=PAPER_ACCURACY_BUDGET))

    optimal = result.optimal_tradeoff_config(max_accuracy_loss=PAPER_ACCURACY_BUDGET)
    best_acc = result.best_accuracy_config()
    default_cell = (0.25, 1.0)
    metrics = {
        "best_accuracy_beta": best_acc[0],
        "best_accuracy_theta": best_acc[1],
        "best_accuracy": result.records[best_acc].accuracy,
        "selected_beta": optimal[0],
        "selected_theta": optimal[1],
        "latency_reduction_vs_best_accuracy": result.latency_reduction(optimal),
        "accuracy_loss_vs_best_accuracy": result.accuracy_loss(optimal),
    }
    if default_cell in result.records:
        metrics["latency_reduction_vs_default"] = result.latency_reduction_vs(optimal, default_cell)
        metrics["selected_accuracy"] = result.records[optimal].accuracy
        metrics["default_accuracy"] = result.records[default_cell].accuracy
    results_store.add("figure2", f"scale={repro_scale.name}", metrics)

    # Shape checks: the selected point must actually trade accuracy for latency.
    assert result.latency_reduction(optimal) >= 0.0
    assert result.accuracy_loss(optimal) <= PAPER_ACCURACY_BUDGET + 1e-9
    # Latency must respond to the hyperparameters somewhere on the grid.
    latencies = result.grid("latency_ms")
    assert latencies.max() > latencies.min()
