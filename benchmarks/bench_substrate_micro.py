"""Benchmark E6 — substrate micro-benchmarks.

Engineering baselines for the building blocks every experiment relies on:
autograd convolution, LIF stepping, BPTT through the paper's network, the
synthetic dataset generator and the analytical hardware model.  Unlike the
experiment benchmarks these use pytest-benchmark's statistical timing
(multiple rounds) because each operation is cheap.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core.network import SpikingCNN
from repro.data.synth_svhn import SynthSVHNConfig, generate_digit_image
from repro.encoding import RateEncoder
from repro.hardware import SparsityAwareAccelerator, workload_from_layer_specs
from repro.neurons import LIF
from repro.surrogate import FastSigmoid


@pytest.fixture(scope="module")
def conv_inputs():
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((8, 3, 32, 32)).astype(np.float32), requires_grad=True)
    w = Tensor(rng.standard_normal((32, 3, 3, 3)).astype(np.float32) * 0.1, requires_grad=True)
    return x, w


def test_conv2d_forward_throughput(benchmark, conv_inputs):
    x, w = conv_inputs
    benchmark(lambda: x.conv2d(w, None, stride=1, padding=1))


def test_conv2d_forward_backward_throughput(benchmark, conv_inputs):
    x, w = conv_inputs

    def step():
        out = x.conv2d(w, None, stride=1, padding=1)
        out.sum().backward()
        x.zero_grad()
        w.zero_grad()

    benchmark(step)


def test_lif_step_throughput(benchmark):
    lif = LIF(beta=0.5, threshold=1.0, surrogate=FastSigmoid(0.25))
    drive = Tensor(np.random.default_rng(1).random((32, 4096)).astype(np.float32))
    benchmark(lambda: lif.step(drive))


def test_spiking_cnn_forward_step(benchmark):
    model = SpikingCNN(image_size=32, conv_channels=(32, 32), hidden_units=256, seed=0)
    frame = Tensor(np.random.default_rng(2).random((4, 3, 32, 32)).astype(np.float32))
    model.eval()

    def step():
        model.reset_spiking_state()
        return model.step(frame)

    benchmark(step)


def test_rate_encoder_throughput(benchmark):
    encoder = RateEncoder(num_steps=10, seed=0)
    images = np.random.default_rng(3).random((32, 3, 32, 32)).astype(np.float32)
    benchmark(lambda: encoder(images))


def test_synth_svhn_generation_rate(benchmark):
    rng = np.random.default_rng(4)
    config = SynthSVHNConfig()
    benchmark(lambda: generate_digit_image(int(rng.integers(0, 10)), rng, config))


def test_hardware_model_evaluation_cost(benchmark):
    specs = [
        {"name": "conv1", "kind": "conv", "in_channels": 3, "out_channels": 32,
         "kernel_size": 3, "out_h": 32, "out_w": 32},
        {"name": "conv2", "kind": "conv", "in_channels": 32, "out_channels": 32,
         "kernel_size": 3, "out_h": 16, "out_w": 16},
        {"name": "fc1", "kind": "fc", "in_features": 2048, "out_features": 256},
        {"name": "fc2", "kind": "fc", "in_features": 256, "out_features": 10},
    ]
    firing = {"conv1": 3000.0, "conv2": 800.0, "fc1": 30.0, "fc2": 2.0}
    workload = workload_from_layer_specs(specs, firing, num_steps=25, input_events_per_step=1500.0)
    accelerator = SparsityAwareAccelerator()
    benchmark(lambda: accelerator.run(workload))
