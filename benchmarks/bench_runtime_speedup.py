"""Benchmark E7 — dense forward vs event-driven runtime.

Times the identical trained network on the identical spike sequence through
both execution paths: the dense autograd forward (what training uses) and
the compiled event-driven runtime (:mod:`repro.runtime`).  Correctness is
asserted before timing — both paths must produce identical output spike
counts — so the speedup is a pure execution-strategy comparison.

Runs in smoke mode by default (< 10 s under pytest); set
``REPRO_BENCH_FULL=1`` for larger batches and more timing repetitions.
"""

from __future__ import annotations

import numpy as np
import pytest

from .conftest import run_once
from repro.runtime.bench import make_reduced_cnn, make_spike_sequence, measure_speedup

#: Input spike densities measured; the paper's operating points live well
#: below 10% activity, where the event-driven gain is largest.
DENSITIES = (0.02, 0.05, 0.10, 0.30)

#: Speedup the event-driven runtime must deliver at <= 10% input density on
#: the reduced CNN.  Recalibrated from 2.0 after the MaxPool2d argmax
#: rewrite made the *dense baseline* ~2.4x faster at the pooling op (the
#: runtime's absolute time is unchanged — the denominator of this ratio
#: improved); measured ~2x on an idle machine since.
TARGET_SPEEDUP_AT_SPARSE = 1.5


def _format_table(results) -> str:
    lines = [
        f"  {'density':>8} {'dense_ms':>10} {'runtime_ms':>11} {'speedup':>8} {'equal':>6}",
    ]
    for r in results:
        row = r.row()
        lines.append(
            f"  {row['density']:>8.3f} {row['dense_ms']:>10.3f} {row['runtime_ms']:>11.3f} "
            f"{row['speedup']:>7.2f}x {str(r.equivalent):>6}"
        )
    return "\n".join(lines)


def test_runtime_speedup_over_dense(benchmark, bench_smoke, results_store):
    if bench_smoke:
        num_steps, batch_size, repeats = 8, 8, 3
    else:
        num_steps, batch_size, repeats = 16, 32, 10
    model = make_reduced_cnn(seed=0)

    def run():
        results = []
        for density in DENSITIES:
            spikes = make_spike_sequence(
                (batch_size, model.in_channels, model.image_size, model.image_size),
                density,
                num_steps,
                seed=17,
            )
            results.append(
                measure_speedup(
                    model,
                    spikes=spikes,
                    repeats=repeats,
                    label=f"density={density:g}",
                )
            )
        return results

    results = run_once(benchmark, run)

    mode = "smoke" if bench_smoke else "full"
    print()
    print(f"[runtime-speedup] reduced CNN, T={num_steps}, N={batch_size}, mode={mode}")
    print(_format_table(results))

    results_store.add(
        "runtime_speedup",
        f"reduced_cnn_{mode}",
        {f"speedup_at_{r.density:.3f}": r.speedup for r in results},
    )

    # Correctness first: identical output spike counts at every density.
    assert all(r.equivalent for r in results)

    sparse = [r for r in results if r.density <= 0.10]
    assert sparse, "no sparse operating point measured"
    best_sparse = max(r.speedup for r in sparse)
    if bench_smoke:
        # Smoke runs on shared CI boxes: require a real win, not the full bar.
        assert best_sparse >= 1.2
    else:
        assert best_sparse >= TARGET_SPEEDUP_AT_SPARSE
