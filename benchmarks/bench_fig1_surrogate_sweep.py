"""Benchmark E1 — Figure 1: surrogate function / derivative-scale sweep.

Reproduces the paper's Figure 1: for the arctangent and fast-sigmoid
surrogates, sweep the derivative scaling factor (``alpha`` / ``k``) with
``beta`` and ``theta`` at their defaults (0.25 / 1.0) and report, per scale,
the model accuracy and the accelerator efficiency (FPS/W), plus the
prior-work accuracy reference line.

Paper observations this bench checks (shape, not absolute values):

* both surrogates follow a similar accuracy trend over the scale sweep, with
  accuracy degrading at large scaling factors;
* the fast sigmoid yields a lower firing rate (higher sparsity) and hence
  higher FPS/W than the arctangent (the paper quotes ~11% better efficiency);
* tuned configurations exceed the prior-work accuracy line.
"""

from __future__ import annotations

from repro.core.config import ExperimentConfig
from repro.core.surrogate_sweep import format_figure1, run_surrogate_sweep

from .conftest import run_once

#: Reduced sweep grid used at bench scale (log-spaced subset of the paper's
#: 0.5-32 range).  REPRO_SCALE=paper widens nothing here — edit this list to
#: sweep every published point.
BENCH_SCALES = (0.5, 2.0, 8.0, 32.0)


def test_figure1_surrogate_scale_sweep(benchmark, repro_scale, results_store):
    base_config = ExperimentConfig(scale=repro_scale)

    def run():
        return run_surrogate_sweep(scales=BENCH_SCALES, base_config=base_config)

    result = run_once(benchmark, run)

    print()
    print(f"[figure1] repro scale: {repro_scale.name}")
    print(format_figure1(result))

    # Record headline numbers for EXPERIMENTS.md.
    results_store.add(
        "figure1",
        f"scale={repro_scale.name}",
        {
            "fast_sigmoid_mean_firing_rate": result.mean_firing_rate("fast_sigmoid"),
            "arctan_mean_firing_rate": result.mean_firing_rate("arctan"),
            "fast_sigmoid_mean_fps_per_watt": result.mean_efficiency("fast_sigmoid"),
            "arctan_mean_fps_per_watt": result.mean_efficiency("arctan"),
            "efficiency_advantage_fast_vs_arctan": result.efficiency_advantage(),
            "fast_sigmoid_best_accuracy": result.best_accuracy("fast_sigmoid"),
            "arctan_best_accuracy": result.best_accuracy("arctan"),
            "prior_work_accuracy_line": result.prior_work_accuracy,
        },
    )

    # Shape checks mirroring the paper's qualitative claims.
    assert result.mean_firing_rate("fast_sigmoid") > 0
    assert result.efficiency_advantage() > 0
    for surrogate in ("arctan", "fast_sigmoid"):
        accuracies = result.accuracy_series(surrogate)
        # Accuracy at the largest scale should not beat the best swept point.
        assert accuracies[-1] <= max(accuracies) + 1e-9
