"""Benchmark E5 — input-encoding ablation (extension experiment).

The paper's introduction identifies the input coding scheme as the primary
driver of SNN sparsity and frames hyperparameter tuning as a complementary
knob.  This extension experiment trains the same configuration under
different input encoders and maps each trained model to the hardware model,
quantifying how much of the firing-rate budget the encoder choice controls.
"""

from __future__ import annotations

from repro.core.config import ExperimentConfig
from repro.core.encoding_ablation import run_encoding_ablation

from .conftest import run_once

BENCH_ENCODERS = ("rate", "latency", "direct")


def test_encoding_ablation(benchmark, repro_scale, results_store):
    base_config = ExperimentConfig(scale=repro_scale)

    def run():
        return run_encoding_ablation(encoders=BENCH_ENCODERS, base_config=base_config)

    result = run_once(benchmark, run)

    print()
    print(f"[encoding ablation] repro scale: {repro_scale.name}")
    print(result.format())

    metrics = {}
    for encoder, record in result.records.items():
        metrics[f"{encoder}_accuracy"] = record.accuracy
        metrics[f"{encoder}_firing_rate"] = record.hardware.firing_rate
        metrics[f"{encoder}_fps_per_watt"] = record.hardware.fps_per_watt
    results_store.add("encoding_ablation", f"scale={repro_scale.name}", metrics)

    rows = result.rows()
    assert len(rows) == len(BENCH_ENCODERS)
    # Latency (single-spike) coding must produce the sparsest input-driven
    # activity of the compared encoders.
    firing = {r["encoder"]: r["firing_rate"] for r in rows}
    assert firing["latency"] <= max(firing.values())
