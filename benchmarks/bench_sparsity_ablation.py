"""Benchmark E4 — sparsity-aware vs sparsity-oblivious hardware ablation.

The paper's introduction motivates its platform with prior results showing
that exploiting sparsity in hardware yields large efficiency gains
([1]: 5.58x training energy, [2]: 2.1x inference efficiency).  This ablation
quantifies the same effect inside the reproduction: the identical trained
model is mapped onto the sparsity-aware accelerator and onto a dense
(sparsity-oblivious) configuration of the same platform.
"""

from __future__ import annotations

from repro.core.config import ExperimentConfig
from repro.core.experiment import run_experiment
from repro.hardware import DenseBaselineAccelerator, SparsityAwareAccelerator, evaluate_on_hardware, format_comparison

from .conftest import run_once


def test_sparsity_aware_vs_dense_hardware(benchmark, repro_scale, results_store):
    config = ExperimentConfig(scale=repro_scale, label="default hyperparameters")

    def run():
        record = run_experiment(config, accelerator=SparsityAwareAccelerator())
        workload = record.hardware.run.workload
        dense_report = evaluate_on_hardware(workload, DenseBaselineAccelerator(), record.accuracy)
        return record, dense_report

    record, dense_report = run_once(benchmark, run)

    print()
    print(f"[sparsity ablation] repro scale: {repro_scale.name}")
    print(
        format_comparison(
            {"dense (sparsity-oblivious)": dense_report, "sparsity-aware (paper)": record.hardware},
            baseline_key="dense (sparsity-oblivious)",
            title="Sparsity-aware vs dense execution of the same trained model",
        )
    )

    gain = record.hardware.fps_per_watt / dense_report.fps_per_watt
    results_store.add(
        "sparsity_ablation",
        f"scale={repro_scale.name}",
        {
            "sparsity": record.hardware.sparsity,
            "sparse_fps_per_watt": record.hardware.fps_per_watt,
            "dense_fps_per_watt": dense_report.fps_per_watt,
            "efficiency_gain_from_sparsity": gain,
            "latency_gain_from_sparsity": dense_report.latency_ms / record.hardware.latency_ms,
        },
    )

    # The whole premise of the paper: exploiting sparsity must pay off.
    assert gain > 1.0
    assert record.hardware.latency_ms < dense_report.latency_ms
