"""Benchmark E4 — sparsity-aware vs sparsity-oblivious hardware ablation.

The paper's introduction motivates its platform with prior results showing
that exploiting sparsity in hardware yields large efficiency gains
([1]: 5.58x training energy, [2]: 2.1x inference efficiency).  This ablation
quantifies the same effect inside the reproduction: the identical trained
model is mapped onto the sparsity-aware accelerator and onto a dense
(sparsity-oblivious) configuration of the same platform.

The adaptive-threshold Pareto benchmark extends the ablation along the
neuron-substrate axis: :func:`repro.core.run_adaptive_threshold_sweep`
trains the same network on the :class:`~repro.neurons.AdaptiveLIF`
substrate (adaptation step 0 = the exact LIF baseline) and records how the
measured firing-rate shift moves the sparsity/cost Pareto points.
"""

from __future__ import annotations

from repro.core.adaptive_sweep import format_adaptive_sweep, run_adaptive_threshold_sweep
from repro.core.config import ExperimentConfig
from repro.core.experiment import run_experiment
from repro.hardware import DenseBaselineAccelerator, SparsityAwareAccelerator, evaluate_on_hardware, format_comparison

from .conftest import run_once


def test_sparsity_aware_vs_dense_hardware(benchmark, repro_scale, results_store):
    config = ExperimentConfig(scale=repro_scale, label="default hyperparameters")

    def run():
        record = run_experiment(config, accelerator=SparsityAwareAccelerator())
        workload = record.hardware.run.workload
        dense_report = evaluate_on_hardware(workload, DenseBaselineAccelerator(), record.accuracy)
        return record, dense_report

    record, dense_report = run_once(benchmark, run)

    print()
    print(f"[sparsity ablation] repro scale: {repro_scale.name}")
    print(
        format_comparison(
            {"dense (sparsity-oblivious)": dense_report, "sparsity-aware (paper)": record.hardware},
            baseline_key="dense (sparsity-oblivious)",
            title="Sparsity-aware vs dense execution of the same trained model",
        )
    )

    gain = record.hardware.fps_per_watt / dense_report.fps_per_watt
    results_store.add(
        "sparsity_ablation",
        f"scale={repro_scale.name}",
        {
            "sparsity": record.hardware.sparsity,
            "sparse_fps_per_watt": record.hardware.fps_per_watt,
            "dense_fps_per_watt": dense_report.fps_per_watt,
            "efficiency_gain_from_sparsity": gain,
            "latency_gain_from_sparsity": dense_report.latency_ms / record.hardware.latency_ms,
        },
    )

    # The whole premise of the paper: exploiting sparsity must pay off.
    assert gain > 1.0
    assert record.hardware.latency_ms < dense_report.latency_ms


def test_adaptive_threshold_pareto(benchmark, repro_scale, bench_smoke, results_store):
    """Adaptation strength must move the measured firing rate off the LIF baseline.

    Runs the adaptive sweep's strongest cell against its step-0 (exact LIF)
    baseline column and records the resulting Pareto points.  The assertion
    is non-directional on purpose — which way the rate moves depends on how
    training redistributes activity at a given scale — but a measurable
    shift must exist, otherwise the substrate adds no new Pareto points.
    """
    steps = (0.0, 0.5) if bench_smoke else (0.0, 0.2, 0.5)
    betas = (0.25,) if bench_smoke else (0.25, 0.5)

    def run():
        return run_adaptive_threshold_sweep(
            adaptation_steps=steps,
            betas=betas,
            base_config=ExperimentConfig(scale=repro_scale),
        )

    result = run_once(benchmark, run)

    print()
    print(f"[adaptive threshold pareto] repro scale: {repro_scale.name}")
    print(format_adaptive_sweep(result))

    shifts = {
        f"step={step:g},beta={beta:g}": result.firing_rate_shift(step, beta)
        for step in result.steps
        for beta in result.betas
        if step > 0.0
    }
    results_store.add(
        "adaptive_threshold_pareto",
        f"scale={repro_scale.name}",
        {
            "adaptation_steps": list(result.steps),
            "betas": list(result.betas),
            "firing_rate_shifts": shifts,
            "pareto_points": result.pareto_rows(),
        },
    )

    # The strongest adaptation cell must land measurably away from the LIF
    # baseline (>2% relative firing-rate change) for at least one beta.
    max_shift = max(abs(shift) for shift in shifts.values())
    assert max_shift > 0.02, f"adaptation produced no measurable firing-rate shift: {shifts}"
