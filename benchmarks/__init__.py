"""Benchmark suite package.

The package marker lets pytest import the benchmark modules with their
``from .conftest import run_once`` relative imports intact, so the suite
can be collected uniformly::

    PYTHONPATH=src python -m pytest benchmarks/bench_*.py -q

Experiment benchmarks run at the ``bench`` reproduction scale (override
with ``REPRO_SCALE``); performance benchmarks run in smoke mode unless
``REPRO_BENCH_FULL=1``.
"""
