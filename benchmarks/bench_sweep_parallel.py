"""Benchmark E8 — sweep executor: serial vs parallel vs warm cache.

Measures three things on a reduced Figure 2 (beta x theta) grid:

1. **Parallel speedup** — the same grid trained serially and through the
   fork-based process pool.  Parallelism only helps with spare cores; the
   assertion (>= 2x at 4 workers) therefore only arms on full mode
   (``REPRO_BENCH_FULL=1``) on a machine with at least 4 CPUs, but the
   measured numbers are always recorded.
2. **Warm-cache re-run** — the whole grid re-run against the populated
   experiment cache must perform *zero* trainings (hard assertion, every
   mode) and return in a fraction of the cold time.
3. **Fused LIF fast path** — single-config training time with the fused
   LIF step versus the composed elementwise reference implementation.

Results are printed and recorded both in ``benchmarks/results/measured.json``
(headline numbers) and as a standalone ``benchmarks/results/BENCH_sweep.json``
artifact with the full measurement detail.
"""

from __future__ import annotations

import os
import time

import numpy as np

from .conftest import RESULTS_DIR, run_once
from repro.analysis.io import save_json
from repro.core.beta_theta_sweep import run_beta_theta_sweep
from repro.core.config import ExperimentConfig, SCALE_PRESETS
from repro.core.experiment import make_dataset, make_encoder, make_loss, make_model
from repro.exec import ExperimentCache
from repro.neurons.lif import LIF
from repro.training.optim import Adam
from repro.training.trainer import Trainer

#: Workers used for the parallel leg (the acceptance bar is quoted at 4).
PARALLEL_WORKERS = 4

#: Reduced Figure 2 grids: four cells in smoke mode, the full bench grid
#: (every (beta, theta) point the paper names explicitly) in full mode.
SMOKE_GRID = ((0.25, 0.5), (1.0, 1.5))
FULL_GRID = ((0.25, 0.5, 0.7), (1.0, 1.5, 2.5))


def _records_equal(a, b) -> bool:
    return (
        a.accuracy == b.accuracy
        and a.hardware.as_dict() == b.hardware.as_dict()
        and a.training.history["train_loss"] == b.training.history["train_loss"]
    )


def test_sweep_parallel_and_cache(benchmark, bench_smoke, repro_scale, results_store, tmp_path):
    if bench_smoke:
        betas, thetas = SMOKE_GRID
        scale = SCALE_PRESETS["smoke"]
    else:
        betas, thetas = FULL_GRID
        scale = repro_scale
    base = ExperimentConfig(surrogate="fast_sigmoid", surrogate_scale=0.25, scale=scale)
    grid = dict(betas=betas, thetas=thetas, base_config=base)
    cells = len(betas) * len(thetas)
    cache = ExperimentCache(tmp_path / "sweep-cache")

    def run():
        t0 = time.perf_counter()
        serial = run_beta_theta_sweep(workers=1, **grid)
        serial_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        parallel = run_beta_theta_sweep(workers=PARALLEL_WORKERS, cache=cache, **grid)
        parallel_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm = run_beta_theta_sweep(workers=PARALLEL_WORKERS, cache=cache, **grid)
        warm_s = time.perf_counter() - t0
        return serial, parallel, warm, serial_s, parallel_s, warm_s

    serial, parallel, warm, serial_s, parallel_s, warm_s = run_once(benchmark, run)

    # Correctness gates: parallel must reproduce serial bit-for-bit, and the
    # warm re-run must be pure cache (zero trainings).
    assert set(serial.records) == set(parallel.records)
    for cell in serial.records:
        assert _records_equal(serial.records[cell], parallel.records[cell]), cell
        assert _records_equal(parallel.records[cell], warm.records[cell]), cell
    assert cache.stores == cells, "cold run must train every cell exactly once"
    assert cache.hits == cells, "warm re-run must serve every cell from cache"

    speedup = serial_s / parallel_s if parallel_s > 0 else float("nan")
    warm_speedup = serial_s / warm_s if warm_s > 0 else float("nan")

    mode = "smoke" if bench_smoke else "full"
    cpus = os.cpu_count() or 1
    print()
    print(
        f"[sweep-parallel] {cells}-cell beta x theta grid at scale={scale.name}, "
        f"{PARALLEL_WORKERS} workers, {cpus} CPUs, mode={mode}"
    )
    print(f"  serial          {serial_s:>8.2f}s")
    print(f"  parallel        {parallel_s:>8.2f}s   ({speedup:.2f}x)")
    print(f"  warm cache      {warm_s:>8.2f}s   ({warm_speedup:.1f}x, 0 trainings)")

    metrics = {
        "cells": cells,
        "workers": PARALLEL_WORKERS,
        "cpus": cpus,
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "parallel_speedup": speedup,
        "warm_cache_seconds": warm_s,
        "warm_cache_trainings": cache.stores - cells,  # 0 by the assertion above
    }
    results_store.add("sweep_parallel", f"scale={scale.name}_{mode}", metrics)
    save_json(
        {"experiment": "sweep_parallel", "mode": mode, "scale": scale.name, **metrics},
        RESULTS_DIR / "BENCH_sweep.json",
    )

    # The >=2x acceptance bar needs real spare cores and full-size cells;
    # smoke cells are so short that pool startup dominates.
    if not bench_smoke and cpus >= PARALLEL_WORKERS:
        assert speedup >= 2.0, f"expected >=2x parallel speedup at {PARALLEL_WORKERS} workers, got {speedup:.2f}x"
    # Warm cache must beat training anywhere.
    assert warm_s < serial_s


def _time_training(config: ExperimentConfig, use_fused: bool, epochs: int) -> float:
    """Wall-clock one training run with the LIF fast path on or off."""
    train_loader, _ = make_dataset(config)
    model = make_model(config)
    for module in model.modules():
        if isinstance(module, LIF):
            module.use_fused = use_fused
    trainer = Trainer(
        model,
        make_encoder(config),
        Adam(model.parameters(), lr=config.learning_rate),
        loss_fn=make_loss(config),
    )
    start = time.perf_counter()
    trainer.fit(train_loader, epochs=epochs)
    return time.perf_counter() - start


def _time_lif_steps(use_fused: bool, *, shape=(32, 64), steps=6, iters=200) -> float:
    """Wall-clock the LIF substrate alone: step sequence + BPTT backward."""
    from repro.autograd import Tensor

    lif = LIF(use_fused=use_fused)
    rng = np.random.default_rng(0)
    frames = [Tensor(rng.standard_normal(shape).astype(np.float32), requires_grad=True) for _ in range(steps)]
    start = time.perf_counter()
    for _ in range(iters):
        lif.reset_state()
        counts = None
        for frame in frames:
            spikes = lif.step(frame)
            counts = spikes if counts is None else counts + spikes
        counts.sum().backward()
        for frame in frames:
            frame.grad = None
    return time.perf_counter() - start


def test_fused_lif_training_fast_path(benchmark, bench_smoke, repro_scale, results_store):
    scale = SCALE_PRESETS["smoke"] if bench_smoke else repro_scale
    epochs = 1 if bench_smoke else 3
    config = ExperimentConfig(scale=scale)
    step_iters = 50 if bench_smoke else 300

    def run():
        # Warm-up pass so allocator/scratch effects do not favour either leg.
        _time_training(config, use_fused=True, epochs=1)
        composed_s = _time_training(config, use_fused=False, epochs=epochs)
        fused_s = _time_training(config, use_fused=True, epochs=epochs)
        _time_lif_steps(True, iters=10)
        step_composed_s = _time_lif_steps(False, iters=step_iters)
        step_fused_s = _time_lif_steps(True, iters=step_iters)
        return composed_s, fused_s, step_composed_s, step_fused_s

    composed_s, fused_s, step_composed_s, step_fused_s = run_once(benchmark, run)
    speedup = composed_s / fused_s if fused_s > 0 else float("nan")
    step_speedup = step_composed_s / step_fused_s if step_fused_s > 0 else float("nan")

    mode = "smoke" if bench_smoke else "full"
    print()
    print(f"[fused-lif] scale={scale.name}, epochs={epochs}, mode={mode}")
    print(f"  end-to-end training:  composed {composed_s:>7.2f}s  fused {fused_s:>7.2f}s  ({speedup:.2f}x)")
    print(
        f"  LIF substrate only:   composed {step_composed_s:>7.2f}s  fused {step_fused_s:>7.2f}s  "
        f"({step_speedup:.2f}x)"
    )

    results_store.add(
        "fused_lif_training",
        f"scale={scale.name}_{mode}",
        {
            "composed_seconds": composed_s,
            "fused_seconds": fused_s,
            "speedup": speedup,
            "step_composed_seconds": step_composed_s,
            "step_fused_seconds": step_fused_s,
            "step_speedup": step_speedup,
        },
    )
    # The fused path must never be slower end to end, and at the substrate
    # level (where the convolution cost does not mask it) it must be a clear
    # win.  Hard bars only arm on full runs; smoke timings are too jittery.
    if not bench_smoke:
        assert speedup > 1.0, f"fused LIF step should be faster, got {speedup:.2f}x"
        assert step_speedup > 1.2, f"expected a clear substrate-level win, got {step_speedup:.2f}x"
