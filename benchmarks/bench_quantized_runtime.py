"""Benchmark — quantized (int8) vs float64 reference execution.

Measures what the quantized runtime path actually buys at serving time:

1. **Latency sweep** (``test_quantized_latency``) — the reduced paper CNN
   compiled twice from the same weights, once at ``fp64`` (the reference
   precision the accuracy gate compares against) and once at ``int8``,
   timed on identical Bernoulli spike sequences across input density
   levels.  Predictions of the two plans are compared on every density
   before timing.  Acceptance bar (full mode): **int8 >= 1.3x** faster
   than fp64 at bench scale.
2. **Accuracy gate** (``test_quantized_accuracy_gate``) — runs the real
   publish-time gate (:func:`repro.runtime.check_accuracy_delta`) for
   int8 and int16 on a :class:`~repro.core.network.SpikingMLP` behind a
   :class:`~repro.encoding.DirectEncoder`, labelling each sample with the
   fp64 plan's own prediction so the reported accuracy drop *is* the
   quantized-vs-reference disagreement rate.  Both precisions must pass
   their budget.

Runs in smoke mode by default (seconds under plain pytest); set
``REPRO_BENCH_FULL=1`` for larger batches and more timing repetitions.
Results merge into ``benchmarks/results/BENCH_quant.json`` (sections
``latency`` and ``accuracy_gate``; see ``docs/BENCHMARKS.md``) plus the
headline speedup in ``benchmarks/results/measured.json``.
"""

from __future__ import annotations

import time

import numpy as np

from .conftest import run_once, update_bench_json
from repro.core.network import SpikingMLP
from repro.encoding import DirectEncoder
from repro.runtime import check_accuracy_delta, compile_network
from repro.runtime.bench import make_reduced_cnn, make_spike_sequence

#: Input spike densities for the latency sweep; the paper's operating
#: points sit at the sparse end, the dense end bounds the worst case.
DENSITIES = (0.05, 0.10, 0.30)

#: Full-mode acceptance bar: int8 wall-clock speedup over fp64 at bench
#: scale, quoted at the paper's sparse operating points (density <= 0.10);
#: the dense 30% point is reported but only has to not lose.
TARGET_INT8_SPEEDUP = 1.3

#: Accuracy budget per precision for the gate leg (top-1 drop vs fp64).
#: Untrained random weights are the worst case for int8 — spike-count
#: margins between classes are razor thin, so disagreement runs well above
#: what a trained model shows (see tests/test_quantized_runtime.py, where
#: trained micro-models hold the registry's default 0.02 budget).
ACCURACY_BUDGETS = {"int8": 0.10, "int16": 0.02}


def _time_best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _format_latency_table(rows) -> str:
    lines = [f"  {'density':>8} {'fp64_ms':>9} {'int8_ms':>9} {'speedup':>8} {'agree':>6}"]
    for row in rows:
        lines.append(
            f"  {row['density']:>8.3f} {row['fp64_ms']:>9.3f} {row['int8_ms']:>9.3f} "
            f"{row['speedup']:>7.2f}x {row['agreement']:>6.3f}"
        )
    return "\n".join(lines)


def test_quantized_latency(benchmark, bench_smoke, results_store):
    """int8 vs fp64 plan latency on the reduced CNN across input densities."""
    if bench_smoke:
        num_steps, batch_size, repeats = 8, 8, 3
        model = make_reduced_cnn(seed=0)
    else:
        num_steps, batch_size, repeats = 16, 64, 10
        model = make_reduced_cnn(channels=16, hidden=128, seed=0)
    fp64_plan = compile_network(model, precision="fp64")
    int8_plan = compile_network(model, precision="int8")
    shape = (batch_size, model.in_channels, model.image_size, model.image_size)

    def run():
        rows = []
        for density in DENSITIES:
            spikes = make_spike_sequence(shape, density, num_steps, seed=17)
            ref = fp64_plan.run(spikes, record_activity=False)
            quant = int8_plan.run(spikes, record_activity=False)
            agreement = float(np.mean(ref.predictions() == quant.predictions()))
            fp64_s = _time_best(lambda: fp64_plan.run(spikes, record_activity=False), repeats)
            int8_s = _time_best(lambda: int8_plan.run(spikes, record_activity=False), repeats)
            rows.append(
                {
                    "density": density,
                    "fp64_ms": fp64_s * 1e3,
                    "int8_ms": int8_s * 1e3,
                    "speedup": fp64_s / int8_s if int8_s > 0 else float("inf"),
                    "agreement": agreement,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    mode = "smoke" if bench_smoke else "full"
    speedups = [row["speedup"] for row in rows]

    print()
    print(f"[quantized-runtime] reduced CNN, T={num_steps}, N={batch_size}, mode={mode}")
    print(_format_latency_table(rows))

    results_store.add(
        "quantized_runtime",
        f"reduced_cnn_{mode}",
        {
            "min_speedup": min(speedups),
            "max_speedup": max(speedups),
            "min_agreement": min(row["agreement"] for row in rows),
        },
    )
    update_bench_json(
        "BENCH_quant.json",
        "latency",
        {
            "experiment": "quantized_runtime",
            "mode": mode,
            "num_steps": num_steps,
            "batch_size": batch_size,
            "repeats": repeats,
            "rows": rows,
        },
    )

    # The hard 1.3x bar is quoted at bench scale (full mode) and at the
    # sparse operating points, where the float32-carrier GEMMs dominate and
    # timing noise cannot hide the precision difference.  Smoke shapes are
    # overhead-dominated (a few ms per forward), so smoke only records.
    if not bench_smoke:
        assert min(speedups) > 1.0, f"int8 should never lose to fp64, got {min(speedups):.2f}x"
        sparse = [row["speedup"] for row in rows if row["density"] <= 0.10]
        assert sparse, "no sparse operating point measured"
        assert min(sparse) >= TARGET_INT8_SPEEDUP, (
            f"expected >={TARGET_INT8_SPEEDUP}x int8 speedup at sparse density, "
            f"got {min(sparse):.2f}x"
        )


def test_quantized_accuracy_gate(benchmark, bench_smoke, results_store):
    """Publish-time accuracy gate for int8/int16 vs the fp64 reference."""
    samples = 64 if bench_smoke else 256
    model = SpikingMLP(in_features=32, hidden_units=64, num_classes=10, seed=0, threshold=0.5)
    model.eval()
    encoder = DirectEncoder(num_steps=8)
    rng = np.random.default_rng(3)
    images = rng.random((samples, 32), dtype=np.float32)

    # Label every sample with the fp64 plan's own prediction, so the gate's
    # "accuracy drop" reads directly as quantized-vs-reference disagreement.
    reference = compile_network(model, precision="fp64")
    labels = reference.run(encoder(images), record_activity=False).predictions()
    loader = [(images[i : i + 32], labels[i : i + 32]) for i in range(0, samples, 32)]

    def run():
        deltas = {}
        for precision, budget in ACCURACY_BUDGETS.items():
            deltas[precision] = check_accuracy_delta(
                model,
                encoder,
                loader,
                precision=precision,
                max_accuracy_drop=budget,
                raise_on_fail=False,
            )
        return deltas

    deltas = run_once(benchmark, run)
    mode = "smoke" if bench_smoke else "full"

    print()
    print(f"[quantized-gate] SpikingMLP/direct, samples={samples}, mode={mode}")
    for precision, delta in deltas.items():
        print(
            f"  {precision:>6}: baseline={delta.baseline_accuracy:.3f} "
            f"quantized={delta.quantized_accuracy:.3f} drop={delta.drop:.4f} "
            f"agreement={delta.agreement:.3f} passed={delta.passed}"
        )

    update_bench_json(
        "BENCH_quant.json",
        "accuracy_gate",
        {
            "experiment": "quantized_runtime",
            "mode": mode,
            "samples": samples,
            **{
                f"{precision}_{key}": value
                for precision, delta in deltas.items()
                for key, value in (
                    ("drop", delta.drop),
                    ("agreement", delta.agreement),
                    ("budget", delta.max_accuracy_drop),
                )
            },
        },
    )

    for precision, delta in deltas.items():
        assert delta.passed, (
            f"{precision} failed the accuracy gate: drop={delta.drop:.4f} "
            f"> budget={delta.max_accuracy_drop}"
        )
